"""Tests for the self-* adaptation engines."""

import pytest

from repro.adaptation import (
    AdaptationDecision,
    ColdDataRemoval,
    ControlLoop,
    ElasticityController,
    LRURemoval,
    OrphanRemoval,
    RemovalManager,
    ReplicationManager,
    TTLRemoval,
    migrate_chunks,
)
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.workloads import CorrectWriter


def make_deployment(**overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=64.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=7),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def write_blob(dep, client, size_mb=256.0, chunk=64.0):
    def scenario(env):
        blob_id = yield env.process(client.create_blob(chunk))
        yield env.process(client.append(blob_id, size_mb))
        return blob_id

    process = dep.env.process(scenario(dep.env))
    return dep.run(until=process)


# ------------------------------------------------------------------ control loop
def test_control_loop_cooldown_suppresses_steps():
    dep = make_deployment()

    class Noisy(ControlLoop):
        name = "noisy"

        def step(self, now):
            return [AdaptationDecision(now, self.name, "act")]

    loop = Noisy(interval_s=1.0, cooldown_s=5.0)
    dep.env.process(loop.run(dep.env))
    dep.run(until=12.5)
    # Steps at 1s, then cooldown to 6s, act, cooldown to 11s, act.
    assert len(loop.decisions) == 3


def test_control_loop_disable():
    dep = make_deployment()

    class Counting(ControlLoop):
        def step(self, now):
            return []

    loop = Counting(interval_s=1.0)
    loop.enabled = False
    dep.env.process(loop.run(dep.env))
    dep.run(until=5.5)
    assert loop.steps == 0


# ------------------------------------------------------------------ replication
def test_replication_repairs_after_crash():
    dep = make_deployment(replication=2)
    client = dep.new_client("c1")
    write_blob(dep, client)
    manager = ReplicationManager(dep, target_replication=2, interval_s=2.0)
    dep.env.process(manager.run(dep.env))

    victim = next(p for p in dep.providers.values() if p.chunks)
    lost = len(victim.chunks)
    assert lost > 0
    victim.node.fail()
    dep.run(until=dep.now + 30.0)

    assert manager.repairs_done >= lost
    assert manager.repair_traffic_mb >= lost * 64.0
    # Every chunk is back at 2 live replicas.
    for key, descriptor in manager.chunk_directory().items():
        assert len(manager.live_replicas(descriptor)) >= 2


def test_replication_reports_lost_chunks():
    dep = make_deployment(replication=1)
    client = dep.new_client("c1")
    write_blob(dep, client)
    manager = ReplicationManager(dep, target_replication=1, interval_s=2.0)
    dep.env.process(manager.run(dep.env))
    for provider in list(dep.providers.values()):
        if provider.chunks:
            provider.node.fail()
    dep.run(until=dep.now + 10.0)
    # Sole replicas died with their nodes: nothing to repair from.
    assert manager.lost_chunks == [] or manager.repairs_done == 0


def test_replication_promotes_hot_chunks():
    dep = make_deployment(replication=1)
    client = dep.new_client("writer")
    blob_id = write_blob(dep, client, size_mb=64.0)
    reader = dep.new_client("reader")
    manager = ReplicationManager(
        dep, target_replication=1, max_replication=3,
        hot_reads_per_s=0.5, interval_s=5.0,
    )
    dep.env.process(manager.run(dep.env))

    def hot_reader(env):
        for _ in range(40):
            yield env.process(reader.read(blob_id, 0.0, 64.0))
            yield env.timeout(0.5)

    process = dep.env.process(hot_reader(dep.env))
    dep.run(until=process)
    dep.run(until=dep.now + 15.0)
    # Hot while read: promoted; cooled afterwards: demoted back to target.
    assert manager.promotions >= 1
    assert manager.demotions >= 1
    for descriptor in manager.chunk_directory().values():
        assert len(descriptor.replicas) == 1


def test_replication_demotes_cold_extra_replicas():
    dep = make_deployment(replication=3)
    client = dep.new_client("c1")
    write_blob(dep, client, size_mb=64.0)
    manager = ReplicationManager(dep, target_replication=2, interval_s=2.0)
    dep.env.process(manager.run(dep.env))
    dep.run(until=dep.now + 10.0)
    assert manager.demotions >= 1
    for descriptor in manager.chunk_directory().values():
        assert len(descriptor.replicas) == 2


def test_migrate_chunks_moves_sole_copies():
    dep = make_deployment(replication=1)
    client = dep.new_client("c1")
    write_blob(dep, client)
    source = next(p for p in dep.providers.values() if p.chunks)
    count = len(source.chunks)

    def drain(env):
        moved = yield from migrate_chunks(source, dep)
        return moved

    process = dep.env.process(drain(dep.env))
    moved = dep.run(until=process)
    assert moved == count
    assert not source.chunks
    total_elsewhere = sum(
        len(p.chunks) for p in dep.providers.values() if p is not source
    )
    assert total_elsewhere >= count


# ------------------------------------------------------------------ elasticity
def test_elasticity_scales_up_under_load():
    dep = make_deployment(data_providers=3)
    controller = ElasticityController(
        dep, min_providers=3, max_providers=10,
        high_load=0.3, interval_s=2.0, cooldown_s=4.0, provision_delay_s=1.0,
    )
    dep.env.process(controller.run(dep.env))
    writers = [CorrectWriter(dep.new_client(f"w{i}"), op_mb=512.0, max_ops=6)
               for i in range(6)]
    for writer in writers:
        dep.env.process(writer.run(dep.env))
    dep.run(until=60.0)
    assert controller.scale_ups > 0
    # The pool grew while the load lasted (it may have contracted again
    # once the writers finished — that is the desired elastic behaviour).
    peak_pool = max(pool for _t, pool, _load in controller.pool_timeline)
    assert peak_pool > 3


def test_elasticity_scales_down_when_idle():
    dep = make_deployment(data_providers=8)
    controller = ElasticityController(
        dep, min_providers=3, max_providers=10,
        low_load=0.2, interval_s=2.0, cooldown_s=2.0,
    )
    dep.env.process(controller.run(dep.env))
    dep.run(until=40.0)
    assert controller.scale_downs > 0
    assert dep.pmanager.pool_size() < 8
    assert dep.pmanager.pool_size() >= 3


def test_elasticity_respects_min_pool():
    dep = make_deployment(data_providers=3)
    controller = ElasticityController(
        dep, min_providers=3, low_load=0.5, interval_s=1.0, cooldown_s=0.0,
    )
    dep.env.process(controller.run(dep.env))
    dep.run(until=20.0)
    assert dep.pmanager.pool_size() == 3
    assert controller.scale_downs == 0


def test_elasticity_drain_preserves_data():
    dep = make_deployment(data_providers=6, replication=1)
    client = dep.new_client("c1")
    blob_id = write_blob(dep, client, size_mb=256.0)
    controller = ElasticityController(
        dep, min_providers=2, low_load=0.5, interval_s=2.0, cooldown_s=2.0,
    )
    dep.env.process(controller.run(dep.env))
    dep.run(until=60.0)
    assert controller.scale_downs > 0

    def read_back(env):
        return (yield env.process(client.read(blob_id, 0.0, 256.0)))

    process = dep.env.process(read_back(dep.env))
    result = dep.run(until=process)
    assert result.ok


# ------------------------------------------------------------------ removal
def place_chunk(dep, provider_id, key, created_at=0.0, last_access=0.0,
                version=1, size=64.0, blob_id=1):
    from repro.blobseer.blob import ChunkDescriptor

    provider = dep.providers[provider_id]
    descriptor = ChunkDescriptor(
        blob_id=blob_id, storage_key=key, size_mb=size,
        replicas=[provider_id], version=version,
        created_at=created_at, last_access=last_access,
    )
    provider.node.disk.put(size)
    provider.chunks[key] = descriptor
    return descriptor


def test_ttl_removal_selects_old_chunks():
    strategy = TTLRemoval(ttl_s=100.0)
    dep = make_deployment()
    old = place_chunk(dep, "provider-0", "old", created_at=1.0)
    new = place_chunk(dep, "provider-0", "new", created_at=950.0)
    chunks = {"old": old, "new": new}
    assert strategy.select(chunks, now=1000.0) == ["old"]


def test_cold_removal_selects_idle_chunks():
    strategy = ColdDataRemoval(idle_s=50.0)
    dep = make_deployment()
    cold = place_chunk(dep, "provider-0", "cold", last_access=1.0)
    hot = place_chunk(dep, "provider-0", "hot", last_access=990.0)
    assert strategy.select({"cold": cold, "hot": hot}, now=1000.0) == ["cold"]


def test_lru_removal_respects_budget():
    strategy = LRURemoval(budget_mb=128.0)
    dep = make_deployment()
    chunks = {
        f"k{i}": place_chunk(dep, "provider-0", f"k{i}", last_access=float(i))
        for i in range(4)  # 256 MB total, budget 128 -> evict 2 oldest
    }
    victims = strategy.select(chunks, now=100.0)
    assert victims == ["k0", "k1"]


def test_lru_removal_noop_under_budget():
    strategy = LRURemoval(budget_mb=1000.0)
    dep = make_deployment()
    chunks = {"k": place_chunk(dep, "provider-0", "k")}
    assert strategy.select(chunks, now=100.0) == []


def test_orphan_removal_selects_unpublished():
    strategy = OrphanRemoval(grace_s=10.0)
    dep = make_deployment()
    orphan = place_chunk(dep, "provider-0", "orphan", created_at=1.0, version=-1)
    published = place_chunk(dep, "provider-0", "ok", created_at=1.0, version=3)
    assert strategy.select({"orphan": orphan, "ok": published}, now=100.0) == ["orphan"]


def test_removal_manager_reclaims_space():
    dep = make_deployment()
    place_chunk(dep, "provider-0", "old1", created_at=1.0, version=1, blob_id=99)
    place_chunk(dep, "provider-1", "old2", created_at=1.0, version=1, blob_id=99)
    manager = RemovalManager(dep, [TTLRemoval(ttl_s=50.0)], interval_s=5.0,
                             protect_latest=False)
    dep.env.process(manager.run(dep.env))
    dep.run(until=70.0)
    assert manager.removed_chunks == 2
    assert manager.reclaimed_mb == pytest.approx(128.0)
    assert not dep.providers["provider-0"].chunks


def test_removal_manager_protects_latest_version():
    dep = make_deployment()
    client = dep.new_client("c1")
    blob_id = write_blob(dep, client, size_mb=128.0)
    manager = RemovalManager(dep, [TTLRemoval(ttl_s=5.0)], interval_s=5.0,
                             protect_latest=True)
    dep.env.process(manager.run(dep.env))
    dep.run(until=60.0)
    # The blob's only version stays intact despite the aggressive TTL.
    def read_back(env):
        return (yield env.process(client.read(blob_id, 0.0, 128.0)))

    process = dep.env.process(read_back(dep.env))
    assert dep.run(until=process).ok


def test_removal_manager_collects_orphans_from_aborted_writes():
    from repro.blobseer import AccessTable

    access = AccessTable()
    dep = BlobSeerDeployment(
        BlobSeerConfig(data_providers=4, metadata_providers=1,
                       tree_capacity=1 << 10, testbed=TestbedConfig(seed=7)),
        access=access,
    )
    client = dep.new_client("victim")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        # Abort the write mid-flight by blocking + killing its transfers.
        def kill(env):
            yield env.timeout(1.0)
            access.block("victim", "test")
            dep.net.abort_matching(lambda f: f.tag == "victim", "blocked")

        env.process(kill(env))
        try:
            yield env.process(client.append(blob_id, 256.0))
        except Exception:
            pass

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    orphaned = sum(
        1 for p in dep.providers.values()
        for d in p.chunks.values() if d.version < 0
    )
    manager = RemovalManager(dep, [OrphanRemoval(grace_s=5.0)], interval_s=5.0)
    dep.env.process(manager.run(dep.env))
    dep.run(until=dep.now + 30.0)
    if orphaned:
        assert manager.removed_chunks == orphaned
    leftover = sum(
        1 for p in dep.providers.values()
        for d in p.chunks.values() if d.version < 0
    )
    assert leftover == 0
