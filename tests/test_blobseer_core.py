"""Integration tests for the BlobSeer substrate (five actors end to end)."""

import pytest

from repro.blobseer import (
    AccessDenied,
    AccessTable,
    BlobSeerConfig,
    BlobSeerDeployment,
    ChunkLost,
    RangeError,
    RecordingSink,
)
from repro.blobseer.instrument import (
    EV_ALLOCATION,
    EV_CHUNK_READ,
    EV_CHUNK_WRITE,
    EV_OP_END,
    EV_PUBLISH,
    EV_TICKET,
)
from repro.cluster import TestbedConfig


def make_deployment(**overrides):
    defaults = dict(
        data_providers=8,
        metadata_providers=2,
        chunk_size_mb=64.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=1),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def run_client_op(deployment, generator):
    process = deployment.env.process(generator)
    return deployment.run(until=process)


def test_create_blob_returns_ids():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        first = yield env.process(client.create_blob(64.0))
        second = yield env.process(client.create_blob(32.0))
        return first, second

    first, second = run_client_op(dep, scenario(dep.env))
    assert (first, second) == (1, 2)


def test_append_then_read_roundtrip():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        write = yield env.process(client.append(blob_id, 256.0))
        read = yield env.process(client.read(blob_id, 0.0, 256.0))
        return write, read

    write, read = run_client_op(dep, scenario(dep.env))
    assert write.ok and write.version == 1
    assert read.ok
    assert read.size_mb == 256.0
    assert write.throughput_mbps > 0


def test_write_throughput_near_nic_limit():
    """A single writer should push ~1 GB at close to its 125 MB/s NIC."""
    dep = make_deployment(data_providers=20)
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        return (yield env.process(client.append(blob_id, 1024.0)))

    result = run_client_op(dep, scenario(dep.env))
    assert result.throughput_mbps > 100.0  # NIC is 125, minus protocol overheads
    assert result.throughput_mbps <= 125.0


def test_versions_isolate_overwrites():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 256.0))
        yield env.process(client.write(blob_id, 64.0, 128.0))
        latest = dep.vmanager.latest(blob_id)
        old = yield env.process(client.read(blob_id, 0.0, 256.0, version=1))
        new = yield env.process(client.read(blob_id, 0.0, 256.0, version=2))
        return latest, old, new

    latest, old, new = run_client_op(dep, scenario(dep.env))
    assert latest[0] == 2
    assert latest[1] == 256.0
    assert old.ok and new.ok


def test_unaligned_write_rejected():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        try:
            yield env.process(client.append(blob_id, 100.0))
        except RangeError:
            return "rejected"
        return "accepted"

    assert run_client_op(dep, scenario(dep.env)) == "rejected"


def test_read_beyond_size_rejected():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 64.0))
        try:
            yield env.process(client.read(blob_id, 0.0, 128.0))
        except RangeError:
            return "rejected"
        return "accepted"

    assert run_client_op(dep, scenario(dep.env)) == "rejected"


def test_concurrent_appends_serialize_versions():
    dep = make_deployment(data_providers=12)
    clients = [dep.new_client(f"c{i}") for i in range(4)]

    def writer(env, client, blob_id):
        return (yield env.process(client.append(blob_id, 128.0)))

    def scenario(env):
        blob_id = yield env.process(clients[0].create_blob(64.0))
        procs = [env.process(writer(env, c, blob_id)) for c in clients]
        results = yield env.all_of(procs)
        return blob_id, [results[p] for p in procs]

    blob_id, results = run_client_op(dep, scenario(dep.env))
    versions = sorted(r.version for r in results)
    assert versions == [1, 2, 3, 4]
    # All four appends landed: size = 4 * 128 MB.
    assert dep.vmanager.latest(blob_id)[1] == 512.0


def test_replication_places_chunks_on_distinct_providers():
    dep = make_deployment(replication=3)
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 128.0))
        return blob_id

    run_client_op(dep, scenario(dep.env))
    for provider in dep.providers.values():
        for descriptor in provider.chunks.values():
            assert len(set(descriptor.replicas)) == 3


def test_read_survives_single_replica_failure():
    dep = make_deployment(replication=2)
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 128.0))
        # Kill one provider that holds chunk replicas.
        holders = [p for p in dep.providers.values() if p.chunks]
        holders[0].node.fail()
        result = yield env.process(client.read(blob_id, 0.0, 128.0))
        return result

    result = run_client_op(dep, scenario(dep.env))
    assert result.ok


def test_read_fails_when_all_replicas_lost():
    dep = make_deployment(replication=1)
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 128.0))
        for provider in list(dep.providers.values()):
            if provider.chunks:
                provider.node.fail()
        try:
            yield env.process(client.read(blob_id, 0.0, 128.0))
        except ChunkLost:
            return "lost"
        return "ok"

    assert run_client_op(dep, scenario(dep.env)) == "lost"


def test_access_table_blocks_client():
    access = AccessTable()
    dep = BlobSeerDeployment(
        BlobSeerConfig(data_providers=4, metadata_providers=1,
                       testbed=TestbedConfig(seed=1)),
        access=access,
    )
    client = dep.new_client("attacker")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 64.0))
        access.block("attacker", reason="dos")
        try:
            yield env.process(client.append(blob_id, 64.0))
        except AccessDenied as exc:
            return exc.reason
        return "allowed"

    assert run_client_op(dep, scenario(dep.env)) == "dos"


def test_access_table_throttle_slows_writes():
    def run_with(cap):
        access = AccessTable()
        dep = BlobSeerDeployment(
            BlobSeerConfig(data_providers=4, metadata_providers=1,
                           testbed=TestbedConfig(seed=1)),
            access=access,
        )
        client = dep.new_client("c1")
        if cap is not None:
            access.throttle("c1", cap)

        def scenario(env):
            blob_id = yield env.process(client.create_blob(64.0))
            return (yield env.process(client.append(blob_id, 128.0)))

        return run_client_op(dep, scenario(dep.env))

    full = run_with(None)
    slow = run_with(10.0)
    assert slow.duration_s > 3 * full.duration_s


def test_instrumentation_emits_expected_events():
    sink = RecordingSink()
    dep = BlobSeerDeployment(
        BlobSeerConfig(data_providers=4, metadata_providers=1,
                       testbed=TestbedConfig(seed=1)),
        sink=sink,
    )
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 128.0))
        yield env.process(client.read(blob_id, 0.0, 128.0))

    run_client_op(dep, scenario(dep.env))
    assert len(sink.of_type(EV_CHUNK_WRITE)) == 2
    assert len(sink.of_type(EV_CHUNK_READ)) == 2
    assert len(sink.of_type(EV_TICKET)) == 1
    assert len(sink.of_type(EV_PUBLISH)) == 1
    assert len(sink.of_type(EV_ALLOCATION)) == 1
    op_ends = sink.of_type(EV_OP_END)
    assert {e.fields["op"] for e in op_ends} >= {"append", "read"}


def test_client_history_records_all_ops():
    dep = make_deployment()
    client = dep.new_client("c1")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 64.0))
        yield env.process(client.read(blob_id, 0.0, 64.0))

    run_client_op(dep, scenario(dep.env))
    assert [r.op for r in client.history] == ["create", "append", "read"]
    assert all(r.ok for r in client.history)


def test_elastic_add_and_retire_provider():
    dep = make_deployment(data_providers=4)
    assert dep.pmanager.pool_size() == 4
    new_provider = dep.add_provider()
    assert dep.pmanager.pool_size() == 5
    assert new_provider.provider_id == "provider-4"
    dep.retire_provider("provider-0")
    assert dep.pmanager.pool_size() == 4


def test_determinism_same_seed_same_trace():
    def run_once():
        dep = make_deployment(allocation="random")
        clients = [dep.new_client(f"c{i}") for i in range(3)]

        def writer(env, client, blob_id):
            yield env.process(client.append(blob_id, 128.0))

        def scenario(env):
            blob_id = yield env.process(clients[0].create_blob(64.0))
            procs = [env.process(writer(env, c, blob_id)) for c in clients]
            yield env.all_of(procs)
            return blob_id

        run_client_op(dep, scenario(dep.env))
        return [
            (r.client_id, r.op, round(r.duration_s, 9))
            for c in clients
            for r in c.history
        ], dep.now

    assert run_once() == run_once()
