"""Property-based end-to-end tests: BlobSeer vs. a reference model.

Random sequences of chunk-aligned writes/appends are applied both to a
real simulated deployment and to a trivial in-memory reference (a dict
of chunk-index -> writer tag per version).  Reads at every published
version must agree with the reference — the versioning isolation
property BlobSeer's design rests on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig

CHUNK = 64.0
MAX_CHUNKS = 8  # keep blobs small: capacity 16 in the tree


@st.composite
def op_sequences(draw):
    count = draw(st.integers(1, 6))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["append", "write"]))
        if kind == "append":
            chunks = draw(st.integers(1, 3))
            ops.append(("append", None, chunks))
        else:
            first = draw(st.integers(0, MAX_CHUNKS - 1))
            chunks = draw(st.integers(1, min(3, MAX_CHUNKS - first)))
            ops.append(("write", first, chunks))
    return ops


def apply_reference(ops):
    """Reference: version -> {chunk_index: op_serial}; size per version."""
    versions = {}
    sizes = {}
    current = {}
    size = 0
    for serial, (kind, first, chunks) in enumerate(ops, start=1):
        if kind == "append":
            first = size
        current = dict(current)
        for index in range(first, first + chunks):
            current[index] = serial
        size = max(size, first + chunks)
        versions[serial] = current
        sizes[serial] = size
    return versions, sizes


@settings(max_examples=25, deadline=None)
@given(ops=op_sequences())
def test_versions_agree_with_reference_model(ops):
    reference_versions, reference_sizes = apply_reference(ops)
    # Appends beyond tree capacity are excluded by construction only for
    # writes; clip op sequences whose appends overflow the capacity.
    if max(reference_sizes.values()) > MAX_CHUNKS * 2:
        return

    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=6, metadata_providers=2,
        chunk_size_mb=CHUNK, tree_capacity=MAX_CHUNKS * 2,
        testbed=TestbedConfig(seed=99),
    ))
    client = dep.new_client("writer")
    outcome = {}

    def scenario(env):
        blob_id = yield env.process(client.create_blob(CHUNK))
        for kind, first, chunks in ops:
            if kind == "append":
                yield env.process(client.append(blob_id, chunks * CHUNK))
            else:
                yield env.process(
                    client.write(blob_id, first * CHUNK, chunks * CHUNK)
                )
        outcome["blob"] = blob_id

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    blob_id = outcome["blob"]

    # Size of every published version matches the reference.
    latest, size_mb, _chunk = dep.vmanager.latest(blob_id)
    assert latest == len(ops)
    assert size_mb == pytest.approx(reference_sizes[latest] * CHUNK)
    for version, expected_size in reference_sizes.items():
        record = dep.vmanager.version_record(blob_id, version)
        assert record.size_mb == pytest.approx(expected_size * CHUNK)

    # Chunk contents (identified by write serial embedded in the storage
    # key, "wN") of every version match the reference.
    from repro.blobseer.metadata import LocalKV
    from repro.blobseer.segment_tree import tree_query

    # Query through the real distributed metadata, via a probe client.
    probe = dep.new_client("probe")

    def audit(env):
        mismatches = []
        for version, expected in reference_versions.items():
            got = yield from tree_query(
                probe.meta, blob_id, version, 0, MAX_CHUNKS * 2,
                capacity=dep.vmanager.tree_capacity,
            )
            # storage key format: b{blob}.{client}.w{serial}.c{index}
            got_serials = {
                index: int(d.storage_key.split(".")[-2][1:])
                for index, d in got.items()
            }
            if got_serials != expected:
                mismatches.append((version, got_serials, expected))
        return mismatches

    process = dep.env.process(audit(dep.env))
    mismatches = dep.run(until=process)
    assert mismatches == []
