"""Unit tests for the repro.cache core library (policies, accounting)."""

from types import SimpleNamespace

import pytest

from repro.cache import (
    ArcPolicy,
    Cache,
    LruPolicy,
    SeededRandomPolicy,
    SizeAdmission,
    make_policy,
)
from repro.telemetry.metrics import MetricsRegistry


# ------------------------------------------------------------- policies
def test_lru_evicts_least_recently_used():
    cache = Cache("c", 3.0, policy="lru")
    for key in "abc":
        cache.put(key, key, 1.0)
    cache.lookup("a")  # refresh a; b is now LRU
    cache.put("d", "d", 1.0)
    assert "b" not in cache
    assert all(k in cache for k in "acd")


def test_arc_keeps_frequent_keys_over_scan():
    cache = Cache("c", 4.0, policy="arc")
    for key in "ab":
        cache.put(key, key, 1.0)
    for _ in range(3):  # a, b become frequent (T2)
        cache.lookup("a")
        cache.lookup("b")
    for key in "wxyz":  # a one-pass scan of cold keys
        cache.put(key, key, 1.0)
    assert "a" in cache and "b" in cache


def test_arc_ghost_hit_adapts_p():
    policy = ArcPolicy()
    cache = Cache("c", 2.0, policy=policy)
    cache.put("a", 1, 1.0)
    cache.put("b", 1, 1.0)
    cache.put("c", 1, 1.0)  # evicts a -> B1 ghost
    assert policy.p == 0.0
    cache.put("a", 1, 1.0)  # ghost hit in B1 grows p (favor recency)
    assert policy.p > 0.0


def test_random_policy_is_seeded():
    def evict_order(seed):
        cache = Cache("c", 3.0, policy=SeededRandomPolicy(seed=seed))
        order = []
        for i in range(10):
            cache.put(i, i, 1.0)
        for i in range(10):
            if i not in cache:
                order.append(i)
        return order

    assert evict_order(7) == evict_order(7)


def test_make_policy_rejects_unknown():
    with pytest.raises(ValueError):
        make_policy("clock")
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("arc"), ArcPolicy)


# ------------------------------------------------------------- accounting
def test_byte_accounting_and_eviction_loop():
    cache = Cache("c", 10.0)
    cache.put("a", 1, 4.0)
    cache.put("b", 2, 4.0)
    assert cache.bytes_used == 8.0
    cache.put("big", 3, 5.0)  # needs 3 MB freed -> evicts until it fits
    assert cache.bytes_used <= 10.0
    assert "big" in cache
    assert cache.stats.evictions >= 1


def test_put_refresh_in_place_updates_size():
    cache = Cache("c", 10.0)
    cache.put("a", 1, 4.0)
    assert cache.put("a", 2, 6.0)  # same key, larger entry
    assert cache.bytes_used == 6.0
    assert len(cache) == 1
    assert cache.get("a") == 2
    assert cache.stats.insertions == 1  # a refresh is not an insertion


def test_admission_rejects_oversized_entries():
    cache = Cache("c", 10.0, admission=SizeAdmission(max_fraction=0.5))
    assert not cache.put("big", 1, 6.0)  # > 50% of capacity
    assert cache.stats.rejected == 1
    assert cache.bytes_used == 0.0
    assert cache.put("ok", 1, 5.0)


def test_entry_larger_than_capacity_rejected():
    cache = Cache("c", 4.0, admission=lambda k, s, c: True)
    assert not cache.put("huge", 1, 8.0)
    assert cache.stats.rejected == 1


def test_lookup_distinguishes_cached_none_from_miss():
    cache = Cache("c", 4.0)
    cache.put("hole", None, 0.5)
    hit, value = cache.lookup("hole")
    assert hit and value is None
    hit, value = cache.lookup("absent")
    assert not hit
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_contains_does_not_touch_stats():
    cache = Cache("c", 4.0)
    cache.put("a", 1, 1.0)
    assert "a" in cache and "b" not in cache
    assert cache.stats.lookups == 0


def test_invalidate_and_clear():
    cache = Cache("c", 4.0)
    cache.put("a", 1, 1.0)
    cache.put("b", 2, 1.0)
    assert cache.invalidate("a")
    assert not cache.invalidate("a")  # already gone
    assert cache.bytes_used == 1.0
    assert cache.clear() == 1
    assert cache.bytes_used == 0.0 and len(cache) == 0
    assert cache.stats.invalidations == 2


def test_resize_down_evicts_to_new_capacity():
    cache = Cache("c", 8.0)
    for i in range(8):
        cache.put(i, i, 1.0)
    cache.resize(3.0)
    assert cache.bytes_used <= 3.0
    assert len(cache) == 3
    with pytest.raises(ValueError):
        cache.resize(0.0)


def test_stats_hit_rate_and_dict():
    cache = Cache("c", 4.0)
    cache.put("a", 1, 1.0)
    cache.lookup("a")
    cache.lookup("nope")
    assert cache.stats.hit_rate == pytest.approx(0.5)
    d = cache.to_dict()
    assert d["name"] == "c" and d["entries"] == 1
    assert d["hits"] == 1 and d["misses"] == 1


# ------------------------------------------------------------- metrics mirror
def test_cache_mirrors_into_metrics_registry():
    env = SimpleNamespace(now=0.0, metrics=None)
    env.metrics = MetricsRegistry(env)
    cache = Cache("tier", 4.0, env=env)
    cache.put("a", 1, 1.0)
    cache.lookup("a")
    cache.lookup("miss")
    cache.invalidate("a")
    m = env.metrics
    assert m.counter("cache.tier.hits").value == 1
    assert m.counter("cache.tier.misses").value == 1
    assert m.counter("cache.tier.insertions").value == 1
    assert m.counter("cache.tier.invalidations").value == 1
    assert m.gauge("cache.tier.bytes_mb").value == 0.0
    assert m.gauge("cache.tier.capacity_mb").value == 4.0


def test_cache_without_env_keeps_working():
    cache = Cache("bare", 4.0)  # no env, no metrics: pure library use
    cache.put("a", 1, 1.0)
    assert cache.get("a") == 1
