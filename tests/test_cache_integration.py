"""Integration tests: cache tiers threaded through BlobSeer, determinism
seams, the Zipf hot-spot workload and the adaptive cache tuner."""

import json

import pytest

from repro import telemetry
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.telemetry.export import chrome_trace_json
from repro.workloads import ZipfReader, build_hotspot_scenario


def make_deployment(seed=5, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=16.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def write_then_read(deployment, reads=2, write_mb=64.0):
    """One writer creates a blob; one reader reads it *reads* times."""
    env = deployment.env
    writer = deployment.new_client("writer")
    reader = deployment.new_client("reader")
    out = {}

    def scenario(env):
        blob_id = yield env.process(writer.create_blob(16.0))
        yield env.process(writer.append(blob_id, write_mb))
        results = []
        for _ in range(reads):
            results.append(
                (yield env.process(reader.read(blob_id, 0.0, write_mb)))
            )
        out["reads"] = results
        out["reader"] = reader

    proc = env.process(scenario(env))
    deployment.run(until=proc)
    return out


# ------------------------------------------------------------- defaults off
def test_caches_default_off():
    deployment = make_deployment()
    client = deployment.new_client("c")
    assert deployment.caches == []
    assert client.chunk_cache is None
    assert client.meta.cache is None
    for provider in deployment.providers.values():
        assert provider.memory_cache is None


# ------------------------------------------------------------- client tiers
def test_chunk_cache_serves_repeat_reads_without_providers():
    deployment = make_deployment(client_chunk_cache_mb=256.0)
    out = write_then_read(deployment, reads=3)
    reader = out["reader"]
    first, rest = out["reads"][0], out["reads"][1:]
    # First read populated the cache; later reads hit it entirely.
    chunks = 4  # 64 MB / 16 MB
    assert reader.chunk_cache.stats.misses == chunks
    assert reader.chunk_cache.stats.hits == 2 * chunks
    # A fully cache-served read never touches the network: it is faster
    # than the cold read by far (only metadata traffic remains).
    assert all(r.duration_s < first.duration_s / 2 for r in rest)


def test_metadata_cache_stops_repeat_tree_traffic():
    deployment = make_deployment(client_metadata_cache_mb=16.0)
    out = write_then_read(deployment, reads=3)
    cache = out["reader"].meta.cache
    assert cache.stats.hits > 0
    # Repeat reads of the same version traverse the same tree nodes:
    # after the first pass everything is hot.
    assert cache.stats.hits >= cache.stats.misses


def test_provider_memory_tier_skips_disk_on_repeat_serves():
    deployment = make_deployment(provider_cache_mb=256.0)
    out = write_then_read(deployment, reads=2)
    tiers = [p.memory_cache for p in deployment.providers.values()]
    # Ingest write-through made every chunk memory-resident, so even the
    # first read hits RAM; the disk never sees a read.
    assert sum(t.stats.hits for t in tiers) >= 4
    first, second = out["reads"]
    assert second.duration_s <= first.duration_s


def test_provider_crash_wipes_memory_tier():
    deployment = make_deployment(provider_cache_mb=256.0)
    write_then_read(deployment, reads=1)
    provider = next(
        p for p in deployment.providers.values()
        if p.memory_cache is not None and len(p.memory_cache) > 0
    )
    provider.node.fail()
    assert len(provider.memory_cache) == 0  # RAM dies with the node


# ------------------------------------------------------------- determinism
def test_cache_disabled_runs_are_byte_identical():
    def run():
        deployment = make_deployment(seed=23)
        tele = telemetry.enable(deployment, profile=False)
        write_then_read(deployment, reads=2)
        return deployment.env, tele

    env_a, tele_a = run()
    env_b, tele_b = run()
    assert env_a.now == env_b.now
    assert env_a.events_processed == env_b.events_processed
    assert chrome_trace_json(tele_a.tracer) == chrome_trace_json(tele_b.tracer)


def test_cache_enabled_runs_reproduce_per_seed():
    def run():
        deployment = make_deployment(
            seed=23,
            client_chunk_cache_mb=256.0,
            client_metadata_cache_mb=16.0,
            provider_cache_mb=256.0,
        )
        tele = telemetry.enable(deployment, profile=False)
        out = write_then_read(deployment, reads=2)
        stats = {c.name: c.to_dict() for c in deployment.caches}
        return deployment.env, tele, out, stats

    env_a, tele_a, out_a, stats_a = run()
    env_b, tele_b, out_b, stats_b = run()
    assert env_a.now == env_b.now
    assert env_a.events_processed == env_b.events_processed
    assert chrome_trace_json(tele_a.tracer) == chrome_trace_json(tele_b.tracer)
    assert json.dumps(stats_a, sort_keys=True) == json.dumps(stats_b, sort_keys=True)


# ------------------------------------------------------------- zipf workload
def test_zipf_reader_draws_are_seeded():
    def draw(seed):
        deployment = make_deployment(seed=seed)
        client = deployment.new_client("z")
        reader = ZipfReader(
            client, blob_id=1, total_chunks=64, chunk_size_mb=8.0,
            rng=deployment.rng.stream("zipf:0"), skew=1.2,
        )
        return [reader.next_chunk() for _ in range(200)]

    assert draw(7) == draw(7)
    assert draw(7) != draw(8)


def test_zipf_reader_is_skewed():
    deployment = make_deployment()
    client = deployment.new_client("z")
    reader = ZipfReader(
        client, blob_id=1, total_chunks=64, chunk_size_mb=8.0,
        rng=deployment.rng.stream("zipf:0"), skew=1.2,
    )
    from collections import Counter
    draws = Counter(reader.next_chunk() for _ in range(2000))
    top = draws.most_common(1)[0][1]
    # Hot chunk dominates: far above the uniform share (2000/64 ~ 31).
    assert top > 5 * (2000 / 64)
    assert all(0 <= c < 64 for c in draws)


def test_hotspot_scenario_caches_speed_up_reads():
    def run(with_caches):
        scenario = build_hotspot_scenario(
            readers=3, dataset_chunks=24, chunk_size_mb=8.0,
            reads_per_client=15, seed=7, with_caches=with_caches,
        )
        scenario.run()
        return scenario

    off, on = run(False), run(True)
    # Same seed, same offered workload, only the speed differs.
    assert off.total_read_mb() == on.total_read_mb() > 0
    assert on.aggregate_read_throughput() > 1.5 * off.aggregate_read_throughput()


# ------------------------------------------------------------- cache tuner
def test_tuner_grows_thrashing_caches_and_shrinks_idle_ones():
    scenario = build_hotspot_scenario(
        readers=3, dataset_chunks=48, chunk_size_mb=8.0,
        reads_per_client=120, seed=7, with_caches=True,
        chunk_cache_mb=16.0, with_tuner=True, tuner_interval_s=0.5,
    )
    scenario.run()
    tuner = scenario.tuner
    assert tuner.decisions_of("cache_grow")
    assert tuner.decisions_of("cache_shrink")
    first = tuner.capacity_timeline[0][1]
    last = tuner.capacity_timeline[-1][1]
    # Thrashing reader chunk caches grew; the idle writer cache shrank.
    readers = [n for n in first if n.startswith("chunk.hotspot-reader")]
    assert readers
    assert all(last[n] > first[n] for n in readers)
    assert last["chunk.hotspot-writer"] < first["chunk.hotspot-writer"]
    # Decisions are traced via the ControlLoop: counters tick.
    metrics = scenario.deployment.env.metrics
    assert metrics.counter("adaptation.cache_grow").value > 0


def test_tuner_respects_total_budget():
    scenario = build_hotspot_scenario(
        readers=3, dataset_chunks=48, chunk_size_mb=8.0,
        reads_per_client=120, seed=7, with_caches=True,
        chunk_cache_mb=16.0, with_tuner=True, tuner_interval_s=0.5,
    )
    # Freeze the fleet-wide budget at the initial total: from here on,
    # growth must be funded by shrinking.
    budget = sum(c.capacity_mb for c in scenario.deployment.caches)
    scenario.tuner.total_budget_mb = budget
    scenario.run()
    total = sum(c.capacity_mb for c in scenario.deployment.caches)
    assert total <= budget + 1e-6
    # It still reallocated: growth was funded by shrinking.
    assert scenario.tuner.decisions_of("cache_grow")
    assert scenario.tuner.decisions_of("cache_shrink")


def test_tuner_dry_run_publishes_but_never_resizes():
    scenario = build_hotspot_scenario(
        readers=3, dataset_chunks=48, chunk_size_mb=8.0,
        reads_per_client=120, seed=7, with_caches=True,
        chunk_cache_mb=16.0, with_tuner=True, tuner_interval_s=0.5,
    )
    scenario.tuner.dry_run = True
    before = {c.name: c.capacity_mb for c in scenario.deployment.caches}
    scenario.run()
    after = {c.name: c.capacity_mb for c in scenario.deployment.caches}
    assert before == after
    assert not scenario.tuner.decisions
    # ... but the cache.* series exist for the introspection layer.
    metrics = scenario.deployment.env.metrics
    assert metrics.series_names("cache.chunk.hotspot-reader-0")


def test_query_engine_cache_rollup():
    from repro.introspection import QueryEngine

    scenario = build_hotspot_scenario(
        readers=3, dataset_chunks=24, chunk_size_mb=8.0,
        reads_per_client=30, seed=7, with_caches=True,
        with_tuner=True, tuner_interval_s=0.5,
    )
    scenario.run()
    engine = QueryEngine.for_deployment(scenario.deployment)
    rollup = engine.cache_stats(window_s=scenario.deployment.env.now)
    reader_tier = rollup.get("chunk.hotspot-reader-0")
    assert reader_tier is not None
    assert 0.0 <= reader_tier["hit_rate"] <= 1.0
    assert reader_tier["capacity_mb"] > 0
    assert reader_tier["lookups_per_s"] > 0
