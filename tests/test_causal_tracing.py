"""End-to-end causal tracing: one client op = one connected trace.

Covers the trace-context propagation added for the observability loop:
spans created in other simulated processes (provider ingest/serve, chunk
pushes) must join the originating client operation's trace, the
critical-path analyzer must account for every sim-second of the
operation, and fault paths must close — not orphan — their spans.
"""

import pytest

from repro import telemetry
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.telemetry import critical_path
from repro.telemetry.export import chrome_trace


def make_deployment(seed=13, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=32.0,
        replication=2,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def run_write_read(deployment, size_mb=128.0, chunk_size_mb=32.0):
    env = deployment.env
    client = deployment.new_client("alice")
    results = {}

    def scenario(env):
        blob_id = yield env.process(client.create_blob(chunk_size_mb))
        results["blob"] = blob_id
        results["write"] = yield env.process(
            client.write(blob_id, 0.0, size_mb)
        )
        results["read"] = yield env.process(client.read(blob_id, 0.0, size_mb))

    env.process(scenario(env))
    deployment.run(until=300.0)
    return results


def parent_index(spans):
    return {s.span_id: s for s in spans}


# ------------------------------------------------------------- connectivity
def test_write_trace_is_connected_across_all_actors():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    results = run_write_read(deployment)
    assert results["write"].ok

    root = tele.tracer.spans_named("client.write")[0]
    trace = tele.tracer.trace_spans(root.trace_id)
    by_id = parent_index(trace)

    # Every span in the trace reaches the root through parent links.
    for span in trace:
        cursor = span
        hops = 0
        while cursor.span_id != root.span_id:
            assert cursor.parent_id in by_id, (
                f"{cursor.name} is orphaned from the write trace"
            )
            cursor = by_id[cursor.parent_id]
            hops += 1
            assert hops < 50
    assert root.parent_id == 0

    # The one trace spans client, provider manager, version manager and
    # at least one data provider node: client -> PM -> providers -> VM.
    tracks = {s.track for s in trace}
    assert "client-alice" in tracks or any("alice" in t for t in tracks)
    assert "pm-node" in tracks
    assert "vm-node" in tracks
    assert any(t.startswith("provider-") for t in tracks)

    # >= 4 protocol phases directly under the root.
    phase_names = {s.name for s in trace if s.parent_id == root.span_id}
    assert {"client.allocate", "client.chunk_transfer",
            "client.ticket", "client.metadata_write",
            "client.publish"} <= phase_names


def test_provider_ingest_spans_join_the_write_trace():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)

    root = tele.tracer.spans_named("client.write")[0]
    transfer = [s for s in tele.tracer.spans_named("client.chunk_transfer")
                if s.trace_id == root.trace_id][0]
    ingests = [s for s in tele.tracer.spans_named("provider.ingest")
               if s.trace_id == root.trace_id]
    # 4 chunks x replication 2.
    assert len(ingests) == 8
    for span in ingests:
        assert span.parent_id == transfer.span_id
        assert span.track.startswith("provider-")


def test_read_trace_links_provider_serve():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)

    root = tele.tracer.spans_named("client.read")[0]
    fetch = [s for s in tele.tracer.spans_named("client.fetch")
             if s.trace_id == root.trace_id][0]
    serves = [s for s in tele.tracer.spans_named("provider.serve")
              if s.trace_id == root.trace_id]
    assert len(serves) == 4  # one replica served per chunk
    assert all(s.parent_id == fetch.span_id for s in serves)
    # The VM lookup leg also joins the read trace.
    assert any(s.name == "vm.get_latest" and s.track == "vm-node"
               for s in tele.tracer.trace_spans(root.trace_id))


def test_no_spans_left_open_after_clean_run():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)
    assert tele.tracer.open_spans() == []


# ------------------------------------------------------------- critical path
def test_phase_durations_sum_to_operation_latency():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    results = run_write_read(deployment)

    root = tele.tracer.spans_named("client.write")[0]
    report = critical_path.analyze(tele.tracer, root=root)
    assert report.duration_s == pytest.approx(results["write"].duration_s)
    total = sum(phase.duration_s for phase in report.phases)
    assert abs(total - report.duration_s) < 1e-9
    assert len(report.phases) >= 4
    for phase in report.phases:
        assert phase.duration_s >= 0.0


def test_analyze_autodetects_root_from_trace_spans():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)

    root = tele.tracer.spans_named("client.write")[0]
    trace = critical_path.trace_of(tele.tracer, root)
    report = critical_path.analyze(trace)
    assert report.root is root


def test_critical_path_walk_and_contributors():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)

    root = tele.tracer.spans_named("client.write")[0]
    report = critical_path.analyze(tele.tracer, root=root)

    assert report.critical_path[0].span is root
    # Steps are nested within the root's interval.
    for step in report.critical_path:
        assert step.span.start >= root.start - 1e-9
        assert step.span.end <= root.end + 1e-9
        assert step.self_s >= 0.0
    # Self time across the path accounts for the whole latency.
    total_self = sum(step.self_s for step in report.critical_path)
    assert total_self == pytest.approx(report.duration_s, abs=1e-6)
    # Contributors aggregate the same self time by span name.
    assert sum(s for _n, s in report.contributors) == pytest.approx(
        total_self, abs=1e-6
    )
    # A 128 MB write is transfer-bound: chunk transfer dominates.
    assert report.contributors[0][0] in (
        "net.flow", "provider.ingest", "client.chunk_transfer"
    )
    # Replication means some pushes finish early -> positive slack somewhere.
    assert report.top_slack(3)
    payload = report.to_dict()
    assert payload["span_count"] == len(report.spans)
    assert report.render()


# ------------------------------------------------------------- export
def test_chrome_trace_emits_cross_process_flow_arrows():
    deployment = make_deployment()
    tele = telemetry.enable(deployment, profile=False)
    run_write_read(deployment)

    payload = chrome_trace(tele.tracer)
    events = payload["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts and len(starts) == len(finishes)
    # Arrow pairs share ids; each corresponds to a cross-track edge.
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    spans_by_id = {s.span_id: s for s in tele.tracer.spans}
    for arrow in finishes:
        child = spans_by_id[arrow["id"]]
        parent = spans_by_id[child.parent_id]
        assert parent.track != child.track

    # Disabling arrows restores the pre-arrow event stream.
    plain = chrome_trace(tele.tracer, flow_arrows=False)["traceEvents"]
    assert all(e["ph"] not in ("s", "f") for e in plain)


# ------------------------------------------------------------- disabled path
def test_tracing_disabled_leaves_simulation_identical():
    def run(with_telemetry):
        deployment = make_deployment(seed=23)
        if with_telemetry:
            telemetry.enable(deployment, profile=False)
        results = run_write_read(deployment)
        return (
            deployment.env.now,
            deployment.env.events_processed,
            results["write"].started_at,
            results["write"].finished_at,
            results["read"].started_at,
            results["read"].finished_at,
        )

    assert run(False) == run(True)


# ------------------------------------------------------------- fault paths
def test_crashed_provider_closes_inflight_ingest_span_with_error():
    deployment = make_deployment(seed=31, replication=1)
    tele = telemetry.enable(deployment, profile=False)
    env = deployment.env
    client = deployment.new_client("alice")
    results = {}

    def scenario(env):
        blob_id = yield env.process(client.create_blob(32.0))
        results["write"] = yield env.process(client.write(blob_id, 0.0, 128.0))

    def killer(env):
        # Mid chunk-transfer: in-flight ingest flows get severed.
        yield env.timeout(0.5)
        deployment.actor_nodes["provider-0"].fail()

    env.process(scenario(env))
    env.process(killer(env))
    deployment.run(until=300.0)

    # The write survived via the client's re-placement retry.
    assert results["write"].ok
    ingests = tele.tracer.spans_named("provider.ingest")
    failed = [s for s in ingests if "error" in s.attrs]
    assert failed, "expected at least one ingest span closed with an error"
    assert all(s.finished for s in ingests)
    assert tele.tracer.open_spans() == []

    # The failed ingest still belongs to the write's trace.
    root = tele.tracer.spans_named("client.write")[0]
    assert all(s.trace_id == root.trace_id for s in failed)
