"""Tests for the chaos soak harness and declarative fault schedules."""

import os

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import FaultInjector, TestbedConfig
from repro.robustness import ChaosHarness, steady_append_load


def make_deployment(seed=11, providers=6, **overrides):
    defaults = dict(
        data_providers=providers,
        metadata_providers=2,
        chunk_size_mb=8.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


# ------------------------------------------------------------------ schedules
def test_schedule_round_trips_through_plain_dicts():
    dep = make_deployment()
    injector = FaultInjector(dep.testbed)
    schedule = [
        {"at": 5.0, "kind": "crash", "node": "provider-1-node",
         "recover_after": 10.0},
        {"at": 8.0, "kind": "partition", "nodes": ["provider-2-node"],
         "heal_after": 4.0, "label": "rack"},
        {"at": 20.0, "kind": "crash", "node": "provider-3-node"},
        {"at": 25.0, "kind": "recover", "node": "provider-3-node"},
    ]
    assert injector.apply_schedule(schedule) == 4
    dep.run(until=30.0)

    log = injector.export_log()
    # Every entry is a plain JSON-able dict.
    assert all(set(e) == {"at", "kind", "node"} for e in log)
    kinds = [e["kind"] for e in log]
    assert kinds.count("crash") == 2
    assert kinds.count("recover") == 2
    assert kinds.count("partition") == 1
    assert kinds.count("heal") == 1

    # Crash/recover entries replay as the next run's schedule.
    replay = [e for e in log if e["kind"] in ("crash", "recover")]
    dep2 = make_deployment()
    injector2 = FaultInjector(dep2.testbed)
    assert injector2.apply_schedule(replay) == 4
    dep2.run(until=30.0)
    assert injector2.crash_count() == 2
    assert injector2.recovery_count() == 2


def test_schedule_rejects_unknown_kind():
    dep = make_deployment()
    injector = FaultInjector(dep.testbed)
    with pytest.raises(ValueError):
        injector.apply_schedule([{"at": 1.0, "kind": "meteor", "node": "x"}])


def test_schedule_labelled_heal_and_message_loss():
    dep = make_deployment()
    injector = FaultInjector(dep.testbed)
    injector.apply_schedule([
        {"at": 2.0, "kind": "partition", "nodes": ["provider-0-node"],
         "label": "split"},
        {"at": 6.0, "kind": "heal", "label": "split"},
        {"at": 0.0, "kind": "message_loss", "rate": 0.05},
    ])
    dep.run(until=4.0)
    assert injector.active_partitions() == 1
    dep.run(until=10.0)
    assert injector.active_partitions() == 0
    assert injector._loss_rate == 0.05


def test_harness_resolves_role_aliases():
    dep = make_deployment(vm_replicas=3, pm_standby=True)
    harness = ChaosHarness(dep)
    assert harness.resolve_target("vm-primary").name == "vm-node"
    assert harness.resolve_target("pm-active").name == "pm-node"
    assert harness.resolve_target("provider-1-node").name == "provider-1-node"
    # After the boot primary dies, the alias follows the failover.
    dep.testbed.node("vm-node").fail()
    dep.run(until=30.0)
    assert harness.resolve_target("vm-primary").name != "vm-node"


def test_harness_aliases_fall_back_without_groups():
    dep = make_deployment()
    harness = ChaosHarness(dep)
    assert harness.resolve_target("vm-primary") is dep.vmanager.node
    assert harness.resolve_target("pm-active") is dep.pmanager.node


# ------------------------------------------------------------------ the soak
def test_chaos_soak_primary_crash_all_invariants_hold():
    dep = make_deployment(seed=42, vm_replicas=3, pm_standby=True)
    client = dep.new_client("c1", rpc_timeout_s=4.0)
    harness = ChaosHarness(dep, check_every_s=5.0, settle_s=30.0)

    state = {}

    def setup():
        blob_id = yield from client.create_blob(8.0)
        state["blob"] = blob_id
        yield from steady_append_load(client, blob_id, 8.0,
                                      period_s=1.0, stop_at=60.0)

    dep.env.process(setup(), name="load")
    dep.run(until=2.0)  # let create_blob land before faults fire
    harness.apply_schedule([
        {"at": 7.0, "kind": "crash", "node": "vm-primary",
         "recover_after": 20.0},
        {"at": 40.0, "kind": "crash", "node": "pm-active",
         "recover_after": 15.0},
    ])
    report = harness.run(until=60.0)

    harness.assert_clean()
    assert report["violations"] == []
    assert report["checks_run"] > 5
    assert report["crashes"] == 2
    assert report["recoveries"] == 2
    assert len(report["vm_failovers"]) == 1
    assert report["vm_failovers"][0]["failover_latency_s"] >= 0.0
    assert len(report["pm_failovers"]) == 1

    # The load actually ran through both outages.
    acked = [op for op in client.history
             if op.op == "append" and op.ok]
    assert len(acked) >= 30


def test_chaos_soak_detects_injected_violation():
    """The checkers are live: corrupting the authority's state trips them."""
    dep = make_deployment(seed=7, vm_replicas=3)
    client = dep.new_client("c1")
    harness = ChaosHarness(dep, settle_s=0.0)

    def setup():
        blob_id = yield from client.create_blob(8.0)
        for _ in range(3):
            yield from client.append(blob_id, 8.0)

    dep.env.process(setup(), name="load")
    dep.run(until=20.0)

    # Forge a lost acked write: unpublish the newest version at the
    # authority (published is derived from publish_time).
    vm = dep.vm_group.active_vm()
    blob_id, info = next(iter(vm.blobs.items()))
    info.versions[info.latest].publish_time = None
    harness.check_invariants([client], final=True)
    assert any(v.invariant == "acked_writes_durable" for v in harness.violations)
    assert any(v.invariant == "gap_free_history" for v in harness.violations)
    with pytest.raises(AssertionError):
        harness.assert_clean()


def test_chaos_soak_unreplicated_baseline_is_clean():
    """The harness also runs against the default single-manager wiring."""
    dep = make_deployment(seed=3)
    client = dep.new_client("c1")
    harness = ChaosHarness(dep, check_every_s=5.0, settle_s=10.0)

    def setup():
        blob_id = yield from client.create_blob(8.0)
        yield from steady_append_load(client, blob_id, 8.0,
                                      period_s=1.0, stop_at=25.0)

    dep.env.process(setup(), name="load")
    dep.run(until=2.0)
    harness.apply_schedule([
        {"at": 6.0, "kind": "crash", "node": "provider-1-node",
         "recover_after": 8.0},
    ])
    report = harness.run(until=25.0)
    harness.assert_clean()
    assert "vm" not in report  # no replication group in the default wiring
    assert report["crashes"] == 1


# ------------------------------------------------------------------ CI smoke
def _soak_seeds():
    """Seeds for the opt-in CI chaos smoke (``CHAOS_SOAK_SEEDS=42,43``).

    Unset (the default, and every tier-1 run) parametrizes over nothing,
    so the matrix costs zero time unless explicitly requested."""
    raw = os.environ.get("CHAOS_SOAK_SEEDS", "")
    return [int(s) for s in raw.split(",") if s.strip()]


@pytest.mark.parametrize("seed", _soak_seeds())
def test_chaos_smoke_seed_matrix(seed):
    """Small schedule, every invariant on — the CI chaos smoke job."""
    dep = make_deployment(seed=seed, vm_replicas=3, pm_standby=True)
    client = dep.new_client("c1", rpc_timeout_s=4.0)
    harness = ChaosHarness(dep, check_every_s=5.0, settle_s=30.0)

    def setup():
        blob_id = yield from client.create_blob(8.0)
        yield from steady_append_load(client, blob_id, 8.0,
                                      period_s=1.0, stop_at=45.0)

    dep.env.process(setup(), name="load")
    dep.run(until=2.0)
    harness.apply_schedule([
        {"at": 6.0, "kind": "crash", "node": "vm-primary",
         "recover_after": 15.0},
        {"at": 30.0, "kind": "crash", "node": "pm-active",
         "recover_after": 10.0},
    ])
    report = harness.run(until=45.0)
    harness.assert_clean()
    assert report["crashes"] == 2
    assert len(report["vm_failovers"]) == 1
