"""Tests for the S3-compatible Cumulus gateway over BlobSeer."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cloud import (
    BucketAlreadyExists,
    BucketNotEmpty,
    CumulusGateway,
    InvalidPart,
    NoSuchBucket,
    NoSuchKey,
    Permission,
    S3AccessDenied,
)
from repro.cluster import TestbedConfig


def make_gateway(**overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=32.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=9),
    )
    defaults.update(overrides)
    dep = BlobSeerDeployment(BlobSeerConfig(**defaults))
    gateway = CumulusGateway(dep)
    return dep, gateway


def add_user(dep, name):
    return dep.testbed.add_node(f"user-{name}")


def run(dep, generator):
    process = dep.env.process(generator)
    return dep.run(until=process)


def test_create_and_list_buckets():
    dep, gw = make_gateway()

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.create_bucket("alice", "logs")
        return (yield from gw.list_buckets("alice"))

    assert run(dep, scenario(dep.env)) == ["data", "logs"]


def test_duplicate_bucket_rejected():
    dep, gw = make_gateway()

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        try:
            yield from gw.create_bucket("bob", "data")
        except BucketAlreadyExists:
            return "rejected"

    assert run(dep, scenario(dep.env)) == "rejected"


def test_put_get_roundtrip():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        put = yield from gw.put_object("alice", alice, "data", "file.bin", 100.0)
        got = yield from gw.get_object("alice", alice, "data", "file.bin")
        return put, got

    put, got = run(dep, scenario(dep.env))
    assert put.size_mb == 100.0
    assert got.etag == put.etag
    assert gw.puts == 1 and gw.gets == 1
    assert gw.bytes_in_mb == 100.0


def test_object_padded_to_chunk_multiple():
    dep, gw = make_gateway(chunk_size_mb=32.0)
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        put = yield from gw.put_object("alice", alice, "data", "odd.bin", 33.0)
        return put

    put = run(dep, scenario(dep.env))
    # 33 MB object occupies 2 chunks (64 MB) in the backend.
    assert dep.vmanager.latest(put.blob_id)[1] == pytest.approx(64.0)
    assert put.size_mb == 33.0  # user-visible size is exact


def test_get_missing_key_raises():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        try:
            yield from gw.get_object("alice", alice, "data", "nope")
        except NoSuchKey:
            return "missing"

    assert run(dep, scenario(dep.env)) == "missing"


def test_missing_bucket_raises():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        try:
            yield from gw.put_object("alice", alice, "ghost", "k", 32.0)
        except NoSuchBucket:
            return "missing"

    assert run(dep, scenario(dep.env)) == "missing"


def test_acl_denies_stranger_and_grants_work():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")
    bob = add_user(dep, "bob")

    def scenario(env):
        bucket = yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "secret", 32.0)
        denied = None
        try:
            yield from gw.get_object("bob", bob, "data", "secret")
        except S3AccessDenied:
            denied = True
        bucket.acl.grant("bob", Permission.READ)
        entry = yield from gw.get_object("bob", bob, "data", "secret")
        write_denied = None
        try:
            yield from gw.put_object("bob", bob, "data", "evil", 32.0)
        except S3AccessDenied:
            write_denied = True
        return denied, entry.key, write_denied

    assert run(dep, scenario(dep.env)) == (True, "secret", True)


def test_public_read_bucket():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")
    anon = add_user(dep, "anon")

    def scenario(env):
        bucket = yield from gw.create_bucket("alice", "pub")
        bucket.acl.public_read = True
        yield from gw.put_object("alice", alice, "pub", "obj", 32.0)
        entry = yield from gw.get_object("anonymous", anon, "pub", "obj")
        return entry.key

    assert run(dep, scenario(dep.env)) == "obj"


def test_list_objects_prefix():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        for key in ("logs/a", "logs/b", "img/c"):
            yield from gw.put_object("alice", alice, "data", key, 32.0)
        return (yield from gw.list_objects("alice", "data", prefix="logs/"))

    assert run(dep, scenario(dep.env)) == ["logs/a", "logs/b"]


def test_delete_object_and_bucket_lifecycle():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "k", 32.0)
        not_empty = None
        try:
            yield from gw.delete_bucket("alice", "data")
        except BucketNotEmpty:
            not_empty = True
        yield from gw.delete_object("alice", "data", "k")
        yield from gw.delete_bucket("alice", "data")
        gone = None
        try:
            yield from gw.list_objects("alice", "data")
        except NoSuchBucket:
            gone = True
        return not_empty, gone

    assert run(dep, scenario(dep.env)) == (True, True)


def test_head_object_metadata():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "k", 48.0,
                                 content_type="text/plain")
        return (yield from gw.head_object("alice", "data", "k"))

    entry = run(dep, scenario(dep.env))
    assert entry.size_mb == 48.0
    assert entry.content_type == "text/plain"
    assert entry.owner == "alice"


def test_multipart_upload_assembles_parts():
    dep, gw = make_gateway(chunk_size_mb=32.0)
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        upload_id = yield from gw.initiate_multipart("alice", "data", "big.bin")
        yield from gw.upload_part("alice", alice, upload_id, 2, 64.0)
        yield from gw.upload_part("alice", alice, upload_id, 1, 32.0)
        entry = yield from gw.complete_multipart("alice", upload_id)
        return entry

    entry = run(dep, scenario(dep.env))
    assert entry.size_mb == pytest.approx(96.0)
    # Backend blob holds both (padded) parts.
    assert dep.vmanager.latest(entry.blob_id)[1] == pytest.approx(96.0)
    assert gw.uploads == {}


def test_multipart_errors():
    dep, gw = make_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        upload_id = yield from gw.initiate_multipart("alice", "data", "k")
        bad_part = None
        try:
            yield from gw.upload_part("alice", alice, upload_id, 0, 32.0)
        except InvalidPart:
            bad_part = True
        wrong_owner = None
        try:
            yield from gw.complete_multipart("mallory", upload_id)
        except InvalidPart:
            wrong_owner = True
        empty = None
        try:
            yield from gw.complete_multipart("alice", upload_id)
        except InvalidPart:
            empty = True
        yield from gw.abort_multipart("alice", upload_id)
        return bad_part, wrong_owner, empty

    assert run(dep, scenario(dep.env)) == (True, True, True)
    assert gw.uploads == {}


def make_cached_gateway(object_cache_mb=256.0, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=32.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=9),
    )
    defaults.update(overrides)
    dep = BlobSeerDeployment(BlobSeerConfig(**defaults))
    gateway = CumulusGateway(dep, object_cache_mb=object_cache_mb)
    return dep, gateway


def test_gateway_cache_serves_repeat_gets():
    dep, gw = make_cached_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "k", 32.0)
        first = yield from gw.get_object("alice", alice, "data", "k")
        second = yield from gw.get_object("alice", alice, "data", "k")
        return first, second

    first, second = run(dep, scenario(dep.env))
    assert first.etag == second.etag
    assert gw.gets == 2 and gw.cached_gets == 1
    assert gw.object_cache.stats.hits == 1


def test_gateway_cache_invalidated_by_overwrite():
    dep, gw = make_cached_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        v1 = yield from gw.put_object("alice", alice, "data", "k", 32.0)
        yield from gw.get_object("alice", alice, "data", "k")  # warm cache
        v2 = yield from gw.put_object("alice", alice, "data", "k", 64.0)
        got = yield from gw.get_object("alice", alice, "data", "k")
        return v1, v2, got

    v1, v2, got = run(dep, scenario(dep.env))
    # The overwrite is a new blob: the stale cached object must not serve.
    assert v2.blob_id != v1.blob_id
    assert got.etag == v2.etag and got.size_mb == 64.0
    assert gw.cached_gets == 0
    assert gw.object_cache.stats.invalidations >= 1


def test_gateway_cache_invalidated_by_delete():
    dep, gw = make_cached_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "k", 32.0)
        yield from gw.get_object("alice", alice, "data", "k")  # warm cache
        yield from gw.delete_object("alice", "data", "k")
        yield from gw.put_object("alice", alice, "data", "k", 32.0)
        return (yield from gw.get_object("alice", alice, "data", "k"))

    got = run(dep, scenario(dep.env))
    # Fresh entry after delete + re-put; the old cached bytes never serve.
    assert gw.cached_gets == 0
    assert got.size_mb == 32.0
    assert len(gw.object_cache) == 1


def test_gateway_cache_invalidated_by_multipart_overwrite():
    dep, gw = make_cached_gateway()
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "big", 32.0)
        yield from gw.get_object("alice", alice, "data", "big")  # warm cache
        upload_id = yield from gw.initiate_multipart("alice", "data", "big")
        yield from gw.upload_part("alice", alice, upload_id, 1, 32.0)
        yield from gw.upload_part("alice", alice, upload_id, 2, 32.0)
        mp = yield from gw.complete_multipart("alice", upload_id)
        got = yield from gw.get_object("alice", alice, "data", "big")
        return mp, got

    mp, got = run(dep, scenario(dep.env))
    assert got.etag == mp.etag and got.size_mb == pytest.approx(64.0)
    assert gw.cached_gets == 0  # stale single-part object never served


def test_gateway_cache_never_bypasses_acl():
    dep, gw = make_cached_gateway()
    alice = add_user(dep, "alice")
    bob = add_user(dep, "bob")

    def scenario(env):
        bucket = yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "secret", 32.0)
        yield from gw.get_object("alice", alice, "data", "secret")  # warm cache
        denied = None
        try:
            yield from gw.get_object("bob", bob, "data", "secret")
        except S3AccessDenied:
            denied = True
        bucket.acl.grant("bob", Permission.READ)
        entry = yield from gw.get_object("bob", bob, "data", "secret")
        return denied, entry.key

    denied, key = run(dep, scenario(dep.env))
    # A hot cache entry must not leak through a failed ACL check...
    assert denied is True
    # ...but once granted, the cached copy serves the authorized reader.
    assert key == "secret"
    assert gw.cached_gets == 1


def test_concurrent_puts_share_backend():
    dep, gw = make_gateway(data_providers=8)
    users = [add_user(dep, f"user{i}") for i in range(4)]

    def putter(env, i):
        return (yield from gw.put_object(f"u{i}", users[i], "data", f"k{i}", 64.0))

    def scenario(env):
        yield from gw.create_bucket("admin", "data")
        bucket = gw.buckets["data"]
        for i in range(4):
            bucket.acl.grant(f"u{i}", Permission.FULL)
        procs = [env.process(putter(env, i)) for i in range(4)]
        yield env.all_of(procs)
        return (yield from gw.list_objects("admin", "data"))

    keys = run(dep, scenario(dep.env))
    assert keys == ["k0", "k1", "k2", "k3"]
    assert gw.puts == 4


def test_put_translates_rpc_timeout_to_service_unavailable():
    """A control-plane timeout surfaces as a retriable 503, not a leak."""
    from repro.blobseer import RpcTimeout
    from repro.cloud import ServiceUnavailable

    dep, gw = make_gateway()
    dep.net.blackhole_missing = True
    gw.backend.rpc_timeout_s = 2.0
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        dep.actor_nodes["vm"].fail()
        try:
            yield from gw.put_object("alice", alice, "data", "k", 64.0)
        except ServiceUnavailable as exc:
            return exc

    exc = run(dep, scenario(dep.env))
    assert isinstance(exc, ServiceUnavailable)
    assert exc.code == "ServiceUnavailable" and exc.status == 503
    assert exc.retriable
    assert exc.operation == "put_object"  # names the failed op
    assert isinstance(exc.__cause__, RpcTimeout)


def test_get_translates_rpc_timeout_to_service_unavailable():
    from repro.cloud import ServiceUnavailable

    dep, gw = make_gateway()
    dep.net.blackhole_missing = True
    gw.backend.rpc_timeout_s = 2.0
    alice = add_user(dep, "alice")

    def scenario(env):
        yield from gw.create_bucket("alice", "data")
        yield from gw.put_object("alice", alice, "data", "k", 64.0)
        dep.actor_nodes["vm"].fail()
        try:
            yield from gw.get_object("alice", alice, "data", "k")
        except ServiceUnavailable as exc:
            return exc

    exc = run(dep, scenario(dep.env))
    assert isinstance(exc, ServiceUnavailable)
    assert exc.operation == "get_object"
    assert exc.retriable
