"""Unit tests for the cluster substrate (nodes, testbed, faults)."""

import pytest

from repro.cluster import FaultInjector, Testbed, TestbedConfig
from repro.simulation import TransferAborted


def test_testbed_builds_nodes_round_robin_sites():
    bed = Testbed(TestbedConfig(sites=3))
    nodes = bed.add_nodes("n", 6)
    sites = [n.site for n in nodes]
    assert sites == ["site-0", "site-1", "site-2", "site-0", "site-1", "site-2"]


def test_testbed_duplicate_name_rejected():
    bed = Testbed()
    bed.add_node("x")
    with pytest.raises(ValueError):
        bed.add_node("x")


def test_node_compute_occupies_core():
    bed = Testbed(TestbedConfig(cores=1))
    node = bed.add_node("n0")
    finish_times = []

    def job(env):
        yield env.process(node.compute(2.0))
        finish_times.append(env.now)

    bed.env.process(job(bed.env))
    bed.env.process(job(bed.env))
    bed.run()
    # Single core: jobs serialize.
    assert finish_times == [2.0, 4.0]


def test_node_cpu_utilization_reflects_busy_cores():
    bed = Testbed(TestbedConfig(cores=4))
    node = bed.add_node("n0")
    samples = []

    def job(env):
        yield env.process(node.compute(5.0))

    def sampler(env):
        yield env.timeout(1.0)
        samples.append(node.cpu_utilization)

    for _ in range(2):
        bed.env.process(job(bed.env))
    bed.env.process(sampler(bed.env))
    bed.run()
    assert samples == [0.5]


def test_node_disk_accounting():
    bed = Testbed(TestbedConfig(disk_mb=100.0))
    node = bed.add_node("n0")
    node.disk.put(30.0)
    assert node.disk_used_mb == 30.0
    assert node.disk_free_mb == 70.0
    assert node.disk_utilization == pytest.approx(0.3)


def test_node_fail_aborts_transfers_and_notifies():
    bed = Testbed()
    a = bed.add_node("a")
    b = bed.add_node("b")
    failures = []
    b.on_fail(lambda n: failures.append(n.name))

    def sender(env):
        done = bed.net.transfer("a", "b", 10_000.0)
        try:
            yield done
        except TransferAborted:
            return "aborted"
        return "done"

    def crasher(env):
        yield env.timeout(1.0)
        b.fail()

    process = bed.env.process(sender(bed.env))
    bed.env.process(crasher(bed.env))
    assert bed.run(until=process) == "aborted"
    assert failures == ["b"]
    assert not b.alive
    assert bed.alive_nodes() == [a]


def test_node_recover_rejoins_network_with_empty_disk():
    bed = Testbed()
    a = bed.add_node("a")
    b = bed.add_node("b")
    b.disk.put(50.0)
    b.fail()
    b.recover()
    assert b.alive
    assert b.disk_used_mb == 0.0
    done = bed.net.transfer("a", "b", 1.0)
    bed.run(until=done)  # must not raise


def test_fault_injector_crash_at_and_recovery():
    bed = Testbed()
    node = bed.add_node("victim")
    injector = FaultInjector(bed)
    injector.crash_at(node, at=5.0, recover_after=3.0)
    bed.run(until=4.9)
    assert node.alive
    bed.run(until=5.1)
    assert not node.alive
    bed.run(until=8.1)
    assert node.alive
    assert injector.crash_count() == 1
    assert injector.recovery_count() == 1


def test_fault_injector_poisson_is_deterministic_per_seed():
    def run_once(seed):
        bed = Testbed(TestbedConfig(seed=seed))
        nodes = bed.add_nodes("n", 10)
        injector = FaultInjector(bed)
        injector.poisson_crashes(nodes, rate_per_second=0.5, stop_at=20.0)
        bed.run(until=20.0)
        return [(e.time, e.node) for e in injector.log]

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)


def test_fault_injector_max_crashes_bound():
    bed = Testbed()
    nodes = bed.add_nodes("n", 10)
    injector = FaultInjector(bed)
    injector.poisson_crashes(nodes, rate_per_second=10.0, stop_at=100.0, max_crashes=3)
    bed.run(until=100.0)
    assert injector.crash_count() == 3


def test_cross_site_latency_applies():
    bed = Testbed(TestbedConfig(sites=2, latency_local_s=0.001, latency_cross_s=0.05))
    a = bed.add_node("a", site="site-0")
    b = bed.add_node("b", site="site-1")
    done = bed.net.message("a", "b")
    bed.run(until=done)
    assert bed.now == pytest.approx(0.05)
