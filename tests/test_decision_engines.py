"""Twin-run equivalence tests for the framework engine ports.

The PR-9 porting contract: every engine re-hosted on the decision
framework produces **byte-identical decisions per seed** versus its
legacy counterpart.  Each twin test builds two identically-seeded
worlds, runs the legacy engine in one and the framework port in the
other, and compares the full decision streams (time, action, detail)
plus the engines' own counters — and, where the scenario defines it,
the canonical ``observables()`` string.

Also covered here:

- the BENCH-DECIDE contention scenario: the arbiter referees one
  conserved memory ledger between the cache tuner and elasticity, never
  exceeding capacity, preempting cache bytes for higher-band scale-ups;
- effect-attribution signals for elasticity and replication (satellite:
  scorecard time-to-effect populated for every engine);
- determinism: stateful planners (hill-climb, epsilon-greedy) are
  byte-identical across reruns per seed, and legacy-engine runs are
  unperturbed by the framework existing at all.
"""

import pytest

from repro.adaptation import ElasticityController, ReplicationManager
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.decision import (
    ElasticityEngine,
    ReplicationEngine,
    SecurityEngine,
    build_cache_tuner,
)
from repro.introspection import DecisionJournal
from repro.introspection.query import QueryEngine
from repro.workloads import (
    CorrectWriter,
    build_contention_scenario,
    build_disturbance_scenario,
    build_dos_scenario,
)

# Small-but-eventful disturbance config shared by the tuner twins.
DISTURB = dict(readers=3, dataset_chunks=24, shift_at=30.0, churn_at=55.0,
               churn_heal_s=15.0, duration=80.0, seed=3)


def decision_stream(loop):
    """The comparable record of every decision an engine executed."""
    return [(d.time, d.engine, d.action, tuple(sorted(d.detail.items())))
            for d in loop.decisions]


def make_deployment(seed=7, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=64.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def write_blob(dep, client, size_mb=256.0, chunk=64.0):
    def scenario(env):
        blob_id = yield env.process(client.create_blob(chunk))
        yield env.process(client.append(blob_id, size_mb))
        return blob_id

    process = dep.env.process(scenario(dep.env))
    return dep.run(until=process)


# ------------------------------------------------------------------ cache tuner
def test_cache_tuner_twin_is_byte_identical_to_legacy():
    legacy = build_disturbance_scenario(**DISTURB)
    framework = build_disturbance_scenario(planner="marginal-utility",
                                           **DISTURB)
    legacy.run()
    framework.run()
    assert legacy.tuner.decisions, "twin run must actually adapt"
    assert decision_stream(legacy.tuner) == decision_stream(framework.tuner)
    assert legacy.tuner.capacity_timeline == framework.tuner.capacity_timeline
    # Not just the decisions: the whole simulated world is identical.
    assert legacy.observables() == framework.observables()


def test_framework_tuner_default_planner_matches_legacy_params():
    from repro.adaptation.cache_tuner import CacheTuner

    dep = make_deployment()
    query = QueryEngine.for_deployment(dep)
    legacy = CacheTuner(query)
    framework = build_cache_tuner(query)
    assert framework.planner_info() == legacy.planner_info()
    assert framework.planner_info()["name"] == "marginal-utility"


def test_every_planner_drives_the_disturbance_scenario():
    small = dict(DISTURB, readers=2, dataset_chunks=16, duration=45.0,
                 shift_at=20.0, churn_at=35.0, churn_heal_s=8.0)
    for planner in ("threshold", "marginal-utility", "hill-climb",
                    "epsilon-greedy"):
        scenario = build_disturbance_scenario(planner=planner, **small)
        scenario.run()
        assert scenario.tuner.steps > 0
        assert scenario.tuner.planner_info()["name"] == planner
        assert scenario.total_read_mb() > 0


# ------------------------------------------------------------------ elasticity
def elasticity_world(seed, engine_cls, **engine_kwargs):
    dep = make_deployment(data_providers=3, seed=seed)
    engine = engine_cls(
        dep, min_providers=3, max_providers=10,
        high_load=0.3, interval_s=2.0, cooldown_s=4.0,
        provision_delay_s=1.0, **engine_kwargs,
    )
    dep.env.process(engine.run(dep.env))
    writers = [CorrectWriter(dep.new_client(f"w{i}"), op_mb=512.0, max_ops=6)
               for i in range(6)]
    for writer in writers:
        dep.env.process(writer.run(dep.env))
    dep.run(until=90.0)
    return dep, engine


def test_elasticity_twin_is_byte_identical_to_legacy():
    dep_a, legacy = elasticity_world(11, ElasticityController)
    dep_b, ported = elasticity_world(11, ElasticityEngine)
    assert legacy.scale_ups > 0, "twin run must actually scale"
    assert decision_stream(legacy) == decision_stream(ported)
    assert legacy.pool_timeline == ported.pool_timeline
    assert (legacy.scale_ups, legacy.scale_downs) == \
        (ported.scale_ups, ported.scale_downs)
    assert dep_a.pmanager.pool_size() == dep_b.pmanager.pool_size()
    assert dep_a.env.events_processed == dep_b.env.events_processed


def test_elasticity_effect_attribution_populates_time_to_effect():
    dep = make_deployment(data_providers=3, seed=11)
    from repro.telemetry import MetricsRegistry

    dep.env.metrics = MetricsRegistry(dep.env)
    query = QueryEngine.for_deployment(dep)
    journal = DecisionJournal(dep.env, effect_window_s=20.0)
    journal.watch("elasticity", ["elasticity.pool_size"])
    engine = ElasticityEngine(
        dep, min_providers=3, max_providers=10, high_load=0.3,
        interval_s=2.0, cooldown_s=4.0, provision_delay_s=1.0, query=query,
    ).attach_journal(journal)
    dep.env.process(engine.run(dep.env))
    for i in range(6):
        writer = CorrectWriter(dep.new_client(f"w{i}"), op_mb=512.0, max_ops=6)
        dep.env.process(writer.run(dep.env))
    dep.run(until=90.0)
    journal.resolve_effects()
    ups = [e for e in journal.for_engine("elasticity")
           if e.action == "scale_up"]
    assert ups, "load must trigger at least one scale-up"
    attributed = [e for e in ups
                  if e.effect.get("elasticity.pool_size", {})
                  .get("time_to_effect_s") is not None]
    assert attributed, "pool_size effect attribution must resolve"
    # Scorecard time-to-effect is therefore populated for this engine.
    from repro.introspection import AdaptationScorecard

    report = AdaptationScorecard(journal=journal).engine_report(
        0.0, dep.env.now)
    assert report["elasticity"]["mean_time_to_effect_s"] is not None
    assert report["elasticity"]["planner"] == "watermark"


# ------------------------------------------------------------------ replication
def replication_world(seed, use_framework, with_journal=False):
    dep = make_deployment(replication=2, seed=seed)
    client = dep.new_client("c1")
    write_blob(dep, client)
    journal = None
    query = None
    if with_journal:
        from repro.telemetry import MetricsRegistry

        dep.env.metrics = MetricsRegistry(dep.env)
        query = QueryEngine.for_deployment(dep)
        journal = DecisionJournal(dep.env, effect_window_s=20.0)
        journal.watch("replication", ["replication.under_replicated"])
    if use_framework:
        manager = ReplicationEngine(dep, target_replication=2,
                                    max_replication=3, hot_reads_per_s=0.5,
                                    interval_s=2.0, query=query)
    else:
        manager = ReplicationManager(dep, target_replication=2,
                                     max_replication=3, hot_reads_per_s=0.5,
                                     interval_s=2.0, query=query)
    if journal is not None:
        manager.attach_journal(journal)
    dep.env.process(manager.run(dep.env))
    victim = next(p for p in dep.providers.values() if p.chunks)
    assert victim.chunks
    victim.node.fail()
    dep.run(until=dep.now + 30.0)
    return dep, manager, journal


def test_replication_twin_is_byte_identical_to_legacy():
    dep_a, legacy, _ = replication_world(7, use_framework=False)
    dep_b, ported, _ = replication_world(7, use_framework=True)
    assert legacy.repairs_done > 0, "twin run must actually repair"
    assert decision_stream(legacy) == decision_stream(ported)
    assert (legacy.repairs_done, legacy.promotions, legacy.demotions,
            legacy.repair_traffic_mb, legacy.lost_chunks) == \
        (ported.repairs_done, ported.promotions, ported.demotions,
         ported.repair_traffic_mb, ported.lost_chunks)
    assert ported.evidence["chunks"] > 0  # sweep provenance noted
    assert dep_a.env.events_processed == dep_b.env.events_processed
    for key, descriptor in ported.impl.chunk_directory().items():
        assert len(ported.impl.live_replicas(descriptor)) >= 2


def test_replication_effect_attribution_populates_time_to_effect():
    _dep, manager, journal = replication_world(7, use_framework=False,
                                               with_journal=True)
    journal.resolve_effects()
    repairs = [e for e in journal.for_engine("replication")
               if e.action == "repair"]
    assert repairs, "the crash must trigger repairs"
    attributed = [e for e in repairs
                  if e.effect.get("replication.under_replicated", {})
                  .get("time_to_effect_s") is not None]
    assert attributed, "under_replicated effect attribution must resolve"


# ------------------------------------------------------------------ security
def security_world(seed, use_framework):
    scenario = build_dos_scenario(
        n_clients=6, malicious_fraction=0.5, security_enabled=True,
        data_providers=12, metadata_providers=2, monitoring_services=2,
        op_mb=256.0, attack_start=10.0, attack_stagger_s=5.0,
        attack_parallel=32, seed=seed, scan_interval_s=5.0,
        history_pull_interval_s=2.0, flush_interval_s=1.0, confirmations=1,
    )
    env = scenario.deployment.env
    for i, writer in enumerate(scenario.correct):
        env.process(writer.run(env), name=f"writer-{i}")
    for i, attacker in enumerate(scenario.attackers):
        env.process(attacker.run(env), name=f"attacker-{i}")
    engine = None
    journal = None
    if use_framework:
        scenario.security.start(scan=False)
        journal = DecisionJournal(env)
        engine = SecurityEngine(scenario.security).attach_journal(journal)
        env.process(engine.run(env), name="security-scan")
    else:
        scenario.security.start()
    scenario.deployment.run(until=75.0)
    return scenario, engine, journal


def violation_stream(scenario):
    return [(v.time, v.client_id, v.policy.name, v.occurrence)
            for v in scenario.security.violations]


def test_security_twin_is_byte_identical_to_legacy():
    legacy, _, _ = security_world(4, use_framework=False)
    framework, engine, journal = security_world(4, use_framework=True)
    assert violation_stream(legacy), "the attack must be detected"
    assert violation_stream(legacy) == violation_stream(framework)
    assert legacy.security.engine.scans == framework.security.engine.scans
    assert (legacy.security.summary()["blocked"]
            == framework.security.summary()["blocked"])
    assert sorted(a.blocked for a in legacy.attackers) == \
        sorted(a.blocked for a in framework.attackers)
    # The framework engine surfaced every violation as a journaled
    # sanction decision with detection evidence.
    sanctions = [e for e in journal.for_engine("security")
                 if e.action == "sanction"]
    assert len(sanctions) == len(violation_stream(framework))
    first = sanctions[0]
    assert first.detail["policy"] == violation_stream(framework)[0][2]
    assert f"{first.detail['client']}.trust" in first.evidence
    assert journal.planner_of("security")["name"] == "policy-scan"
    assert engine.planner_info()["params"]["scan_interval_s"] == 5.0


def test_security_violation_counter_matches_legacy():
    legacy, _, _ = security_world(4, use_framework=False)
    framework, _, _ = security_world(4, use_framework=True)

    def counter(scenario):
        metrics = scenario.deployment.env.metrics
        if metrics is None:
            return None
        return metrics.counter("security.violations").value

    assert counter(legacy) == counter(framework)
    assert counter(legacy) is None or counter(legacy) >= 0


# ------------------------------------------------------------------ contention
CONTEND = dict(readers=4, load_writers=3, dataset_chunks=24,
               shift_at=30.0, duration=90.0, seed=0)


def test_contention_arbiter_never_exceeds_budget_and_preempts():
    # The builder defaults: enough bulk-write load that elasticity must
    # scale up into the deliberately-too-small slack.
    scenario = build_contention_scenario(with_journal=True)
    scenario.run()
    ledger = scenario.arbiter.ledgers["memory_mb"]
    # The conserved-budget invariant held at every settlement (checked
    # live by assert_conserved) and at the end.
    assert ledger.used() <= ledger.capacity + 1e-9
    assert ledger.peak_used <= ledger.capacity + 1e-9
    # Real contention: the budget was actually fought over.
    assert scenario.arbiter.grants > 0
    assert scenario.elasticity.scale_ups > 0
    assert scenario.arbiter.preemptions, \
        "scale-up under a tight budget must preempt cache capacity"
    # Preemption physically shrank caches below their initial footprint
    # at the moment it happened (the tuner may re-grow later).
    _t, requester, holder, resource, freed = scenario.arbiter.preemptions[0]
    assert (requester, holder, resource) == \
        ("elasticity", "cache-tuner", "memory_mb")
    assert freed > 0
    # Both engines journaled under their advertised planners.
    assert scenario.journal.planner_of("cache-tuner")["name"] == \
        "marginal-utility"
    assert scenario.journal.planner_of("elasticity")["name"] == "watermark"
    # Arbiter preemptions land on the shared timeline too.
    assert [e for e in scenario.journal.for_engine("arbiter")
            if e.action == "preempt"]


def test_contention_denials_are_logged_not_applied():
    scenario = build_contention_scenario(with_journal=False, **CONTEND)
    scenario.run()
    if scenario.arbiter.denials:
        assert len(scenario.arbiter.denied_log) == scenario.arbiter.denials
        for _t, engine, _action, resource, shortfall in \
                scenario.arbiter.denied_log:
            assert resource == "memory_mb" and shortfall > 0
            assert engine in ("cache-tuner", "elasticity")
    # Denied actions were never applied: the loop counters agree.
    denied = scenario.tuner.denied + scenario.elasticity.denied
    assert denied == scenario.arbiter.denials


def test_contention_run_is_deterministic_per_seed():
    runs = []
    for _ in range(2):
        scenario = build_contention_scenario(with_journal=False, **CONTEND)
        scenario.run()
        runs.append(scenario.observables())
    assert runs[0] == runs[1]


# ------------------------------------------------------------------ determinism
@pytest.mark.parametrize("planner", ["hill-climb", "epsilon-greedy"])
def test_stateful_planners_are_deterministic_per_seed(planner):
    small = dict(DISTURB, readers=2, dataset_chunks=16, duration=50.0,
                 shift_at=20.0, churn_at=35.0, churn_heal_s=8.0)
    runs = []
    for _ in range(2):
        scenario = build_disturbance_scenario(planner=planner, **small)
        scenario.run()
        runs.append((decision_stream(scenario.tuner),
                     scenario.observables()))
    assert runs[0][0] == runs[1][0]
    assert runs[0][1] == runs[1][1]


def test_legacy_runs_are_unperturbed_by_the_framework():
    """Framework-off (planner=None) reruns stay byte-identical: merely
    having the decision subsystem in-process changes nothing."""
    small = dict(DISTURB, readers=2, dataset_chunks=16, duration=50.0,
                 shift_at=20.0, churn_at=35.0, churn_heal_s=8.0)
    first = build_disturbance_scenario(planner=None, **small)
    first.run()
    # Import and exercise the framework between the two legacy runs.
    import repro.decision  # noqa: F401

    second = build_disturbance_scenario(planner=None, **small)
    second.run()
    assert first.planner_name is None and second.planner_name is None
    assert first.observables() == second.observables()
    assert decision_stream(first.tuner) == decision_stream(second.tuner)
