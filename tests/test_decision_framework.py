"""Tests for the repro.decision framework core.

Covers the PR-9 contract, engine-independently:

- :class:`SignalRef` sensors resolve through the query engine and carry
  stable provenance keys;
- :class:`Action` actuators apply, revert, and convert to standard
  :class:`AdaptationDecision` records;
- :class:`ResourceLedger` conservation: ``used() <= capacity`` is a hard
  invariant (overspend raises), peak usage is tracked;
- :class:`Arbiter` semantics: grants, credits capped at holdings,
  deterministic band-ordered preemption through reclaim hooks, atomic
  multi-resource rollback, the denial log, and ``require`` raising;
- :class:`DecisionLoop` runs any planner over any knob domain behind the
  full ControlLoop surface — including the cooldown, critical-health
  override, and bounded decision-ring paths of ``ControlLoop.step``'s
  machinery (previously only exercised by legacy engines);
- all four planners behave and stay deterministic: threshold rules,
  marginal-utility ranking with post-shrink funding, hill-climb
  direction flips, epsilon-greedy arm accounting on an injected stream.
"""

import pytest

from repro.adaptation import AdaptationDecision, ControlLoop
from repro.decision import (
    Action,
    Arbiter,
    DecisionLoop,
    EpsilonGreedyPlanner,
    HillClimbPlanner,
    MarginalUtilityPlanner,
    ResourceLedger,
    SignalRef,
    ThresholdPlanner,
    make_planner,
)
from repro.decision.arbiter import ArbitrationDenied
from repro.decision.planners import PLANNERS, Planner
from repro.decision.signals import resolve_all
from repro.introspection import DecisionJournal
from repro.introspection.query import QueryEngine
from repro.simulation import Environment
from repro.telemetry import MetricsRegistry


# ------------------------------------------------------------------ fixtures
class ToyDomain:
    """Minimal knob domain: plain dict state, scripted signals/rewards."""

    def __init__(
        self,
        values,
        floors=None,
        ceilings=None,
        used=None,
        budget=None,
        signal_map=None,
        rewards=None,
        dry_run=False,
        resource="mb",
        engine="toy",
    ):
        self.values = dict(values)
        self.floors = dict(floors or {})
        self.ceilings = dict(ceilings or {})
        self.used = dict(used or {})
        self.budget = budget
        self.signal_map = dict(signal_map or {})
        self.rewards = list(rewards or [])
        self._reward_pos = 0
        self.dry_run = dry_run
        self.resource = resource
        self.engine = engine
        self.applied = []

    def knobs(self):
        return list(self.values)

    def value(self, name):
        return self.values[name]

    def bytes_used(self, name):
        return self.used.get(name, 0.0)

    def utilization(self, name):
        return self.bytes_used(name) / self.values[name]

    def floor(self, name):
        return self.floors.get(name, 1.0)

    def ceiling(self, name):
        return self.ceilings.get(name)

    def signals(self, name):
        return self.signal_map.get(name)

    def evidence(self, name, signals):
        return {f"{name}.pressure": signals["pressure"],
                f"{name}.activity": signals["activity"]}

    def pool(self):
        if self.budget is None:
            return None
        return max(0.0, self.budget - sum(self.values.values()))

    def reward(self):
        if not self.rewards:
            return None
        value = self.rewards[min(self._reward_pos, len(self.rewards) - 1)]
        self._reward_pos += 1
        return value

    def _move(self, name, delta):
        def apply():
            self.values[name] += delta
            self.applied.append((name, delta))
        return apply

    def make_grow(self, name, amount, signals=None, utility=None):
        detail = {"knob": name, "amount": round(amount, 6)}
        if utility is not None:
            detail["utility"] = round(utility, 6)
        return Action("grow", self.engine, subject=name,
                      cost={self.resource: amount}, detail=detail,
                      apply=self._move(name, amount),
                      undo=self._move(name, -amount))

    def make_shrink(self, name, amount, signals=None):
        return Action("shrink", self.engine, subject=name,
                      cost={self.resource: -amount},
                      detail={"knob": name, "amount": round(amount, 6)},
                      apply=self._move(name, -amount),
                      undo=self._move(name, amount))


BUSY = {"pressure": 1.0, "activity": 10.0, "hit_rate": 0.5}
IDLE = {"pressure": 0.0, "activity": 0.0, "hit_rate": 0.0}
CALM = {"pressure": 0.0, "activity": 10.0, "hit_rate": 0.9}


class FakeHealth:
    """Duck-typed HealthMonitor: an events list + events_since."""

    class _Event:
        def __init__(self, severity):
            self.severity = severity

    def __init__(self):
        self.events = []

    def emit(self, severity):
        self.events.append(self._Event(severity))

    def events_since(self, index):
        if index >= len(self.events):
            return index, []
        return len(self.events), self.events[index:]


# ------------------------------------------------------------------ signals
def test_signal_ref_resolves_window_stat():
    env = Environment()
    metrics = MetricsRegistry(env)
    query = QueryEngine(metrics=metrics, env=env, window_s=60.0)
    for t, v in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]:
        metrics.sample("sig", v, time=t)
    ref = SignalRef("sig")
    assert ref.resolve(query, now=3.0) == pytest.approx(20.0)
    assert SignalRef("sig", "max").resolve(query, now=3.0) == pytest.approx(30.0)
    assert SignalRef("missing").resolve(query, now=3.0) is None
    assert ref.resolve(None) is None


def test_signal_ref_keys_and_resolve_all():
    assert SignalRef("a.b").key == "a.b:mean@engine"
    assert SignalRef("a.b", "p99", 30.0).key == "a.b:p99@30s"
    env = Environment()
    metrics = MetricsRegistry(env)
    query = QueryEngine(metrics=metrics, env=env)
    metrics.sample("a.b", 5.0, time=1.0)
    out = resolve_all([SignalRef("a.b"), SignalRef("none")], query, now=2.0)
    assert out == {"a.b:mean@engine": 5.0, "none:mean@engine": None}


def test_signal_ref_is_hashable_config():
    assert SignalRef("x") == SignalRef("x")
    assert len({SignalRef("x"), SignalRef("x"), SignalRef("y")}) == 2


# ------------------------------------------------------------------ actions
def test_action_execute_revert_and_decision():
    domain = ToyDomain({"a": 10.0})
    action = domain.make_grow("a", 2.0)
    action.execute()
    assert domain.values["a"] == 12.0
    action.revert()
    assert domain.values["a"] == 10.0
    decision = action.decision(7.0)
    assert isinstance(decision, AdaptationDecision)
    assert (decision.time, decision.engine, decision.action) == (7.0, "toy", "grow")
    assert decision.detail == {"knob": "a", "amount": 2.0}
    # detail is copied, not aliased
    decision.detail["extra"] = True
    assert "extra" not in action.detail


def test_action_str_mentions_cost_and_subject():
    action = Action("grow", "toy", subject="a", cost={"mb": 4.0})
    assert "toy.grow a" in str(action) and "mb+4" in str(action)
    bare = Action("noop", "toy")
    bare.execute()  # no apply hook: a no-op, not an error
    bare.revert()


# ------------------------------------------------------------------ ledger
def test_ledger_tracks_holdings_and_peak():
    ledger = ResourceLedger("mem", capacity=100.0)
    ledger._settle("a", 40.0)
    ledger._settle("b", 30.0)
    assert ledger.used() == pytest.approx(70.0)
    assert ledger.free() == pytest.approx(30.0)
    assert ledger.holding("a") == pytest.approx(40.0)
    ledger._settle("a", -40.0)
    assert "a" not in ledger.holdings  # fully released holdings vanish
    assert ledger.peak_used == pytest.approx(70.0)


def test_ledger_overspend_raises():
    ledger = ResourceLedger("mem", capacity=10.0)
    with pytest.raises(AssertionError, match="overspent"):
        ledger._settle("a", 11.0)


def test_ledger_to_dict_rounds_holdings():
    ledger = ResourceLedger("mem", capacity=10.0)
    ledger._settle("a", 1.0 / 3.0)
    snap = ledger.to_dict()
    assert snap["capacity"] == 10.0
    assert snap["holdings"] == {"a": round(1.0 / 3.0, 6)}


# ------------------------------------------------------------------ arbiter
def test_arbiter_requires_capacity_to_create_ledger():
    arbiter = Arbiter()
    with pytest.raises(KeyError):
        arbiter.ledger("mem")
    ledger = arbiter.ledger("mem", capacity=50.0)
    assert arbiter.ledger("mem") is ledger
    # Re-declaring with a capacity resizes; shrinking below use raises.
    arbiter.assume("a", "mem", 40.0)
    with pytest.raises(AssertionError):
        arbiter.ledger("mem", capacity=30.0)


def test_arbiter_assume_rejects_negative():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    with pytest.raises(ValueError):
        arbiter.assume("a", "mem", -1.0)


def test_arbiter_grants_within_budget_and_ignores_unmanaged():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    assert arbiter.admit(Action("grow", "a", cost={"mem": 6.0}))
    # Unmanaged resources are always granted and never tracked.
    assert arbiter.admit(Action("grow", "a", cost={"gpu": 999.0}))
    assert arbiter.grants == 2
    assert arbiter.ledgers["mem"].used() == pytest.approx(6.0)
    assert "gpu" not in arbiter.ledgers


def test_arbiter_denies_and_logs_when_no_room():
    env = Environment()
    env.run(until=3.0)
    arbiter = Arbiter(env=env)
    arbiter.ledger("mem", capacity=10.0)
    arbiter.assume("other", "mem", 8.0)
    assert not arbiter.admit(Action("grow", "a", cost={"mem": 5.0}))
    assert arbiter.denials == 1
    (when, engine, action, resource, shortfall), = arbiter.denied_log
    assert (when, engine, action, resource) == (3.0, "a", "grow", "mem")
    assert shortfall == pytest.approx(3.0)
    # The failed debit left nothing behind.
    assert arbiter.ledgers["mem"].holding("a") == 0.0


def test_arbiter_credit_capped_at_holding():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    arbiter.assume("a", "mem", 3.0)
    # Releasing more than held only releases what is held: the ledger
    # never goes negative and later math stays conserved.
    assert arbiter.admit(Action("shrink", "a", cost={"mem": -9.0}))
    assert arbiter.ledgers["mem"].holding("a") == 0.0
    assert arbiter.ledgers["mem"].used() == 0.0


def test_arbiter_preempts_lower_band_through_reclaim_hook():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    freed_calls = []

    def reclaim(resource, amount):
        freed_calls.append((resource, amount))
        return amount  # fully cooperative victim

    arbiter.register("hi", band=0)
    arbiter.register("lo", band=2, reclaim=reclaim)
    arbiter.assume("lo", "mem", 8.0)
    assert arbiter.admit(Action("grow", "hi", cost={"mem": 6.0}))
    # 2 MB were free; the remaining 4 MB were reclaimed from `lo`.
    assert freed_calls == [("mem", pytest.approx(4.0))]
    assert arbiter.ledgers["mem"].holding("hi") == pytest.approx(6.0)
    assert arbiter.ledgers["mem"].holding("lo") == pytest.approx(4.0)
    assert len(arbiter.preemptions) == 1
    _t, requester, holder, resource, freed = arbiter.preemptions[0]
    assert (requester, holder, resource) == ("hi", "lo", "mem")
    assert freed == pytest.approx(4.0)


def test_arbiter_never_preempts_same_or_higher_band():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    arbiter.register("a", band=1, reclaim=lambda r, x: x)
    arbiter.register("b", band=1, reclaim=lambda r, x: x)
    arbiter.assume("a", "mem", 9.0)
    assert not arbiter.admit(Action("grow", "b", cost={"mem": 5.0}))
    assert arbiter.preemptions == []
    assert arbiter.ledgers["mem"].holding("a") == pytest.approx(9.0)


def test_arbiter_preemption_order_is_band_then_name():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=12.0)
    order = []

    def hook(name):
        def reclaim(resource, amount):
            order.append(name)
            return amount
        return reclaim

    arbiter.register("hi", band=0)
    for name, band in [("mid", 1), ("low-b", 2), ("low-a", 2)]:
        arbiter.register(name, band=band, reclaim=hook(name))
        arbiter.assume(name, "mem", 4.0)
    assert arbiter.admit(Action("grow", "hi", cost={"mem": 9.0}))
    # Lowest band first; names break ties alphabetically; mid only pays
    # the 1 MB remainder.
    assert order == ["low-a", "low-b", "mid"]
    assert arbiter.ledgers["mem"].holding("mid") == pytest.approx(3.0)


def test_arbiter_partial_reclaim_still_denies():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    arbiter.register("hi", band=0)
    # The victim frees only half of what is asked of it.
    arbiter.register("lo", band=1, reclaim=lambda r, x: x / 2.0)
    arbiter.assume("lo", "mem", 10.0)
    assert not arbiter.admit(Action("grow", "hi", cost={"mem": 8.0}))
    assert arbiter.denials == 1
    # What was physically reclaimed stays reclaimed (the cache really
    # shrank), but the requester holds nothing.
    assert arbiter.ledgers["mem"].holding("hi") == 0.0
    assert arbiter.ledgers["mem"].holding("lo") == pytest.approx(6.0)


def test_arbiter_multi_resource_rollback_is_atomic():
    arbiter = Arbiter()
    arbiter.ledger("cpu", capacity=10.0)
    arbiter.ledger("mem", capacity=2.0)
    # Costs settle in sorted resource order: cpu first (fits), then mem
    # (does not) — the cpu settlement must roll back.
    assert not arbiter.admit(
        Action("grow", "a", cost={"cpu": 5.0, "mem": 5.0}))
    assert arbiter.ledgers["cpu"].used() == 0.0
    assert arbiter.ledgers["mem"].used() == 0.0
    assert arbiter.denials == 1


def test_arbiter_require_raises_on_denial():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=1.0)
    with pytest.raises(ArbitrationDenied):
        arbiter.require(Action("grow", "a", cost={"mem": 5.0}))
    arbiter.require(Action("grow", "a", cost={"mem": 0.5}))


def test_arbiter_journals_preemptions():
    env = Environment()
    journal = DecisionJournal(env)
    arbiter = Arbiter(env=env, journal=journal)
    arbiter.ledger("mem", capacity=4.0)
    arbiter.register("hi", band=0)
    arbiter.register("lo", band=1, reclaim=lambda r, x: x)
    arbiter.assume("lo", "mem", 4.0)
    assert arbiter.admit(Action("grow", "hi", cost={"mem": 3.0}))
    entry, = journal.for_engine("arbiter")
    assert entry.action == "preempt"
    assert entry.detail == {"for": "hi", "from": "lo",
                            "resource": "mem", "freed": 3.0}


def test_arbiter_to_dict_reports_state():
    arbiter = Arbiter()
    arbiter.ledger("mem", capacity=10.0)
    arbiter.register("a", band=0)
    arbiter.admit(Action("grow", "a", cost={"mem": 4.0}))
    snap = arbiter.to_dict()
    assert snap["grants"] == 1 and snap["denials"] == 0
    assert snap["bands"] == {"a": 0}
    assert snap["ledgers"]["mem"]["used"] == pytest.approx(4.0)


# ------------------------------------------------------------------ decision loop
def run_loop(loop, until, env=None):
    env = env or Environment()
    env.process(loop.run(env))
    env.run(until=until)
    return env


def test_decision_loop_applies_planner_actions():
    domain = ToyDomain({"a": 10.0, "b": 10.0}, budget=40.0,
                       signal_map={"a": BUSY, "b": IDLE},
                       used={"b": 0.0})
    loop = DecisionLoop(planner=ThresholdPlanner(), domain=domain,
                        name="toy", interval_s=1.0)
    run_loop(loop, until=1.5)
    # One tick: a grew (busy + pressure), b shrank (idle).
    assert domain.values["a"] == pytest.approx(12.5)
    assert domain.values["b"] == pytest.approx(7.5)
    assert loop.applied == 2 and loop.denied == 0
    assert [d.action for d in loop.decisions] == ["grow", "shrink"]
    assert loop.evidence["a.pressure"] == 1.0


def test_decision_loop_without_planner_is_inert():
    domain = ToyDomain({"a": 10.0}, signal_map={"a": BUSY})
    loop = DecisionLoop(domain=domain, interval_s=1.0)
    run_loop(loop, until=3.5)
    assert loop.steps == 3 and loop.applied == 0
    assert domain.values["a"] == 10.0
    assert loop.planner_info() is None


def test_decision_loop_denied_actions_are_not_applied():
    domain = ToyDomain({"a": 10.0}, signal_map={"a": BUSY})
    arbiter = Arbiter()
    arbiter.ledger("mb", capacity=11.0)
    arbiter.assume("toy", "mb", 10.0)
    loop = DecisionLoop(planner=ThresholdPlanner(), domain=domain,
                        arbiter=arbiter, name="toy", interval_s=1.0)
    run_loop(loop, until=1.5)
    # Wanted +2.5 MB, only 1 MB free, nobody to preempt: denied.
    assert loop.denied == 1 and loop.applied == 0
    assert domain.values["a"] == 10.0
    assert loop.decisions == []
    assert arbiter.denials == 1


def test_decision_loop_registers_planner_with_journal():
    env = Environment()
    journal = DecisionJournal(env)
    loop = DecisionLoop(planner=ThresholdPlanner(step_fraction=0.5),
                        domain=ToyDomain({"a": 10.0}), name="toy")
    loop.attach_journal(journal)
    assert journal.planner_of("toy") == {
        "name": "threshold",
        "params": {"pressure_threshold": 0.1, "idle_activity": 0.05,
                   "step_fraction": 0.5},
    }


def test_control_loop_base_step_raises():
    with pytest.raises(NotImplementedError):
        ControlLoop().step(0.0)


def test_decision_loop_cooldown_suppresses_and_critical_health_overrides():
    domain = ToyDomain({"a": 8.0}, ceilings={"a": 1000.0},
                       signal_map={"a": BUSY})
    health = FakeHealth()
    loop = DecisionLoop(planner=ThresholdPlanner(), domain=domain,
                        name="toy", interval_s=1.0, cooldown_s=10.0)
    loop.attach_health(health)
    env = run_loop(loop, until=3.5)
    # First decision at t=1 started the cooldown: ticks 2 and 3 skipped.
    assert loop.steps == 1
    # A critical health event forces the next tick through the cooldown.
    health.emit("critical")
    env.run(until=4.5)
    assert loop.steps == 2
    assert [e.severity for e in loop.health_inbox] == ["critical"]
    # Non-critical events do not override.
    health.emit("warning")
    env.run(until=5.5)
    assert loop.steps == 2


def test_decision_loop_ring_bounds_decisions():
    domain = ToyDomain({"a": 1.0}, ceilings={"a": 1e9},
                       signal_map={"a": BUSY})
    loop = DecisionLoop(planner=ThresholdPlanner(), domain=domain,
                        name="toy", interval_s=1.0, max_decisions=3)
    run_loop(loop, until=7.5)
    assert loop.decisions_total == 7
    assert loop.decisions_dropped == 4
    assert len(loop.decisions) == 3
    # The ring keeps the newest decisions.
    assert [d.time for d in loop.decisions] == [5.0, 6.0, 7.0]


def test_decision_loop_emits_trace_instants_and_counters():
    from repro.telemetry.tracer import Tracer

    env = Environment()
    env.tracer = Tracer(env)
    env.metrics = MetricsRegistry(env)
    domain = ToyDomain({"a": 10.0}, ceilings={"a": 1000.0},
                       signal_map={"a": BUSY})
    loop = DecisionLoop(planner=ThresholdPlanner(), domain=domain,
                        name="toy", interval_s=1.0)
    run_loop(loop, until=2.5, env=env)
    marks = [m for m in env.tracer.instants if m.name == "adapt.grow"]
    assert len(marks) == 2 and marks[0].track == "toy"
    assert env.metrics.counter("adaptation.grow").value == 2


# ------------------------------------------------------------------ planners
def plan_once(planner, domain, now=0.0):
    loop = DecisionLoop(planner=planner, domain=domain, name=domain.engine)
    return loop.step(now), loop


def test_threshold_planner_respects_bounds_and_dry_run():
    domain = ToyDomain({"a": 10.0, "b": 10.0}, budget=21.0,
                       ceilings={"a": 11.0},
                       signal_map={"a": BUSY, "b": BUSY})
    decisions, _loop = plan_once(ThresholdPlanner(), domain)
    # a capped by its ceiling (+1), b by the remaining pool (1 left - 1
    # just granted... pool is re-read live: b gets min(2.5, 0) after a
    # grew into the slack).
    assert [(d.detail["knob"], d.detail["amount"]) for d in decisions] == [
        ("a", 1.0)]
    dry = ToyDomain({"a": 10.0}, signal_map={"a": BUSY}, dry_run=True)
    decisions, _loop = plan_once(ThresholdPlanner(), dry)
    assert decisions == [] and dry.applied == []


def test_threshold_planner_skips_knobs_without_history():
    domain = ToyDomain({"a": 10.0, "b": 10.0}, signal_map={"b": IDLE})
    decisions, loop = plan_once(ThresholdPlanner(), domain)
    assert [d.detail["knob"] for d in decisions] == ["b"]
    assert "a.pressure" not in loop.evidence


def test_marginal_utility_shrinks_only_to_fund_growth():
    # All-idle fleet: no growers, so nothing shrinks either.
    domain = ToyDomain({"a": 10.0, "b": 10.0},
                       signal_map={"a": IDLE, "b": IDLE})
    decisions, _loop = plan_once(MarginalUtilityPlanner(), domain)
    assert decisions == []


def test_marginal_utility_funds_growers_from_shrinkers_by_utility():
    hot = {"pressure": 4.0, "activity": 10.0, "hit_rate": 0.2}
    warm = {"pressure": 1.0, "activity": 10.0, "hit_rate": 0.6}
    domain = ToyDomain(
        {"hot": 8.0, "warm": 16.0, "cold": 12.0},
        floors={"cold": 1.0},
        budget=36.0,  # fully allocated: growth must be funded by shrink
        signal_map={"hot": hot, "warm": warm, "cold": IDLE},
    )
    decisions, _loop = plan_once(MarginalUtilityPlanner(), domain)
    kinds = [(d.action, d.detail["knob"]) for d in decisions]
    # cold shrinks first, then growers in descending utility order
    # (hot: 4/8=0.5 beats warm: 1/16=0.0625).
    assert kinds == [("shrink", "cold"), ("grow", "hot"), ("grow", "warm")]
    shrink, grow_hot, grow_warm = decisions
    assert shrink.detail["amount"] == pytest.approx(3.0)
    assert grow_hot.detail["amount"] == pytest.approx(2.0)  # step 25% of 8
    # warm wanted 4 but only 1 MB of pool remained after hot grew.
    assert grow_warm.detail["amount"] == pytest.approx(1.0)
    assert grow_hot.detail["utility"] == pytest.approx(0.5)
    # Budget stays conserved.
    assert sum(domain.values.values()) <= 36.0 + 1e-9


def test_marginal_utility_busy_spare_knob_gives_only_unused_room():
    domain = ToyDomain(
        {"hot": 8.0, "spare": 16.0},
        used={"spare": 15.0},
        budget=24.0,
        signal_map={"hot": BUSY, "spare": CALM},
    )
    decisions, _loop = plan_once(MarginalUtilityPlanner(spare_utilization=0.99),
                                 domain)
    shrink = next(d for d in decisions if d.action == "shrink")
    # Floor raised to bytes_used: only the single unused MB is released.
    assert shrink.detail["amount"] == pytest.approx(1.0)


def test_hill_climb_flips_direction_on_reward_drop():
    domain = ToyDomain({"a": 16.0}, ceilings={"a": 1000.0},
                       rewards=[10.0, 5.0, 4.0])
    planner = HillClimbPlanner()
    loop = DecisionLoop(planner=planner, domain=domain, name="toy")
    d1 = loop.step(0.0)
    assert d1[0].action == "grow"  # initial direction is up
    d2 = loop.step(1.0)  # reward dropped 10 -> 5: flip to shrink
    assert d2[0].action == "shrink"
    d3 = loop.step(2.0)  # dropped again 5 -> 4: flip back to grow
    assert d3[0].action == "grow"
    assert loop.evidence["reward"] == 4.0


def test_hill_climb_reverses_when_pinned_and_skips_without_reward():
    domain = ToyDomain({"a": 10.0}, ceilings={"a": 10.0}, rewards=[1.0])
    planner = HillClimbPlanner()
    loop = DecisionLoop(planner=planner, domain=domain, name="toy")
    decisions = loop.step(0.0)
    # Pinned at the ceiling: the planner reverses and shrinks instead.
    assert [d.action for d in decisions] == ["shrink"]
    no_reward = ToyDomain({"a": 10.0})
    decisions, loop = plan_once(HillClimbPlanner(), no_reward)
    assert decisions == [] and no_reward.applied == []


def test_hill_climb_round_robins_knobs():
    domain = ToyDomain({"a": 8.0, "b": 8.0}, ceilings={"a": 1e9, "b": 1e9},
                       rewards=[1.0, 1.0, 1.0, 1.0])
    loop = DecisionLoop(planner=HillClimbPlanner(), domain=domain, name="toy")
    knobs = [loop.step(float(i))[0].detail["knob"] for i in range(4)]
    assert knobs == ["a", "b", "a", "b"]


class FakeRng:
    """Scripted numpy-like generator for exact bandit control."""

    def __init__(self, randoms, integers=()):
        self.randoms = list(randoms)
        self.integers_seq = list(integers)

    def random(self):
        return self.randoms.pop(0)

    def integers(self, n):
        return self.integers_seq.pop(0) % n


def test_epsilon_greedy_requires_rng():
    with pytest.raises(ValueError):
        EpsilonGreedyPlanner(None)


def test_epsilon_greedy_probes_then_exploits_best_arm():
    # epsilon=0: pure exploitation; probe untried arms in order first.
    domain = ToyDomain({"a": 8.0}, ceilings={"a": 1e9},
                       rewards=[0.0, 10.0, 10.0, 20.0])
    planner = EpsilonGreedyPlanner(FakeRng([0.9] * 8), epsilon=0.0)
    loop = DecisionLoop(planner=planner, domain=domain, name="toy")
    d1 = loop.step(0.0)
    assert (d1[0].action, loop.evidence["mode"]) == ("grow", "probe")
    d2 = loop.step(1.0)  # a+ credited +10; a- still untried
    assert (d2[0].action, loop.evidence["mode"]) == ("shrink", "probe")
    d3 = loop.step(2.0)  # a- credited 0; best mean is a+ (+10)
    assert (d3[0].action, loop.evidence["mode"]) == ("grow", "exploit")
    assert planner._means[("a", 1)] == pytest.approx(10.0)
    assert planner._means[("a", -1)] == pytest.approx(0.0)


def test_epsilon_greedy_explores_on_epsilon():
    domain = ToyDomain({"a": 8.0, "b": 8.0},
                       ceilings={"a": 1e9, "b": 1e9}, rewards=[1.0])
    planner = EpsilonGreedyPlanner(FakeRng([0.1], integers=[3]),
                                   epsilon=0.2)
    loop = DecisionLoop(planner=planner, domain=domain, name="toy")
    decisions = loop.step(0.0)
    # Arms are [(a,+),(a,-),(b,+),(b,-)]: index 3 is b-.
    assert decisions[0].detail["knob"] == "b"
    assert decisions[0].action == "shrink"
    assert loop.evidence == {"reward": 1.0, "arm": "b-", "mode": "explore"}


def test_epsilon_greedy_identical_streams_identical_decisions():
    def run(seed_draws):
        domain = ToyDomain({"a": 8.0, "b": 4.0},
                           ceilings={"a": 1e9, "b": 1e9},
                           rewards=[1.0, 2.0, 1.5, 3.0, 2.5])
        planner = EpsilonGreedyPlanner(
            FakeRng(seed_draws, integers=[1, 2, 0, 3, 1]), epsilon=0.3)
        loop = DecisionLoop(planner=planner, domain=domain, name="toy")
        out = []
        for i in range(5):
            out.extend((d.time, d.action, tuple(sorted(d.detail.items())))
                       for d in loop.step(float(i)))
        return out

    draws = [0.1, 0.9, 0.2, 0.95, 0.05]
    assert run(list(draws)) == run(list(draws))


def test_make_planner_registry():
    assert sorted(PLANNERS) == ["epsilon-greedy", "hill-climb",
                                "marginal-utility", "threshold"]
    assert isinstance(make_planner("threshold"), ThresholdPlanner)
    assert isinstance(make_planner("hill-climb", step_fraction=0.5),
                      HillClimbPlanner)
    bandit = make_planner("epsilon-greedy", rng=FakeRng([0.5]), epsilon=0.1)
    assert isinstance(bandit, EpsilonGreedyPlanner) and bandit.epsilon == 0.1
    with pytest.raises(KeyError, match="unknown planner"):
        make_planner("simulated-annealing")


def test_planner_info_shape():
    for name in PLANNERS:
        planner = make_planner(name, rng=FakeRng([]))
        info = planner.info()
        assert info["name"] == name
        assert isinstance(info["params"], dict)
    with pytest.raises(NotImplementedError):
        Planner().plan(None, 0.0)
