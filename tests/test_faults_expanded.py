"""Tests for the expanded fault-injection layer: partitions, gray
failures, probabilistic message loss, and crash/recovery race guards."""

import pytest

from repro.cluster import FaultInjector, Testbed, TestbedConfig
from repro.simulation.network import TransferAborted


def make_testbed(seed=7, **overrides):
    return Testbed(TestbedConfig(seed=seed, **overrides))


def drive(env, event_factory):
    """Start a process waiting on *event_factory()*; capture its fate."""
    outcome = {}

    def runner():
        try:
            outcome["value"] = yield event_factory()
        except Exception as exc:  # noqa: BLE001 - test harness
            outcome["error"] = exc
        outcome["at"] = env.now

    env.process(runner())
    return outcome


# ------------------------------------------------------------------ partitions
def test_partition_blackholes_crossing_messages():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    c = testbed.add_node("c")

    pid = injector.partition([a])
    crossing = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 1.0))
    inside = drive(testbed.env, lambda: testbed.net.transfer("b", "c", 1.0))
    testbed.env.run(until=10.0)
    assert "at" not in crossing        # swallowed: never delivered
    assert "at" in inside              # same-side traffic unaffected
    assert testbed.net.blackholed_transfers >= 1

    assert injector.heal(pid)
    healed = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 1.0))
    testbed.env.run(until=20.0)
    assert "at" in healed and "error" not in healed
    kinds = [e.kind for e in injector.log]
    assert kinds == ["partition", "heal"]


def test_partition_aborts_inflight_flows_both_directions():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    env = testbed.env

    outgoing = drive(env, lambda: testbed.net.transfer("a", "b", 5000.0))
    incoming = drive(env, lambda: testbed.net.transfer("b", "a", 5000.0))
    env.run(until=0.5)  # both flows admitted and running

    injector.partition([a])
    env.run(until=1.0)
    assert isinstance(outgoing["error"], TransferAborted)
    assert isinstance(incoming["error"], TransferAborted)
    assert outgoing["at"] == pytest.approx(0.5)


def test_partition_heals_automatically():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    testbed.add_node("b")
    injector.partition([a], heal_after=5.0)
    assert injector.active_partitions() == 1
    testbed.env.run(until=6.0)
    assert injector.active_partitions() == 0
    assert [e.kind for e in injector.log] == ["partition", "heal"]


def test_partition_site_cuts_whole_site():
    testbed = make_testbed(sites=2)
    injector = FaultInjector(testbed)
    testbed.add_nodes("n", 4)  # round-robins across site-0/site-1
    site0 = [n.name for n in testbed.nodes_at("site-0")]
    site1 = [n.name for n in testbed.nodes_at("site-1")]
    assert site0 and site1

    injector.partition_site("site-0")
    env = testbed.env
    cross = drive(env, lambda: testbed.net.transfer(site0[0], site1[0], 0.0))
    local = drive(env, lambda: testbed.net.transfer(site0[0], site0[1], 0.0))
    env.run(until=5.0)
    assert "at" not in cross
    assert "at" in local


def test_partition_requires_nodes():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    with pytest.raises(ValueError):
        injector.partition([])
    with pytest.raises(ValueError):
        injector.partition_site("site-99")


def test_heal_is_idempotent():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    pid = injector.partition([a])
    assert injector.heal(pid)
    assert not injector.heal(pid)


# ------------------------------------------------------------------ gray failures
def test_degrade_nic_slows_bulk_transfers():
    def timed_transfer(factor):
        testbed = make_testbed()
        injector = FaultInjector(testbed)
        a = testbed.add_node("a")
        testbed.add_node("b")
        if factor is not None:
            injector.degrade_nic(a, bandwidth_factor=factor)
        outcome = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 100.0))
        testbed.env.run(until=600.0)
        return outcome["at"]

    baseline = timed_transfer(None)
    degraded = timed_transfer(0.5)
    assert degraded == pytest.approx(2 * baseline, rel=0.05)


def test_degrade_nic_latency_factor_delays_messages():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    testbed.add_node("b")

    before = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 0.0))
    testbed.env.run(until=1.0)
    injector.degrade_nic(a, bandwidth_factor=1.0, latency_factor=10.0)
    after = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 0.0))
    testbed.env.run(until=2.0)
    base_latency = before["at"]
    degraded_latency = after["at"] - 1.0
    assert degraded_latency == pytest.approx(10 * base_latency)

    # Restore brings latency (and the log) back to normal.
    assert injector.restore_nic(a)
    restored = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 0.0))
    testbed.env.run(until=3.0)
    assert restored["at"] - 2.0 == pytest.approx(base_latency)
    assert [e.kind for e in injector.log] == ["degrade", "restore"]


def test_degrade_nic_restores_after_duration():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    original = a.netnode.capacity_out
    injector.degrade_nic(a, bandwidth_factor=0.25, duration_s=5.0)
    assert a.netnode.capacity_out == pytest.approx(original * 0.25)
    testbed.env.run(until=6.0)
    assert a.netnode.capacity_out == pytest.approx(original)


def test_degrade_nic_guards():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    a = testbed.add_node("a")
    with pytest.raises(ValueError):
        injector.degrade_nic(a, bandwidth_factor=0.0)
    with pytest.raises(ValueError):
        injector.degrade_nic(a, latency_factor=0.5)
    injector.degrade_nic(a, bandwidth_factor=0.5)
    with pytest.raises(ValueError):
        injector.degrade_nic(a, bandwidth_factor=0.5)  # already degraded
    assert injector.restore_nic(a)
    assert not injector.restore_nic(a)  # idempotent


# ------------------------------------------------------------------ message loss
def _loss_pattern(seed, sends=40, rate=0.5):
    testbed = make_testbed(seed=seed)
    injector = FaultInjector(testbed)
    injector.set_message_loss(rate)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    delivered = []

    def sender(env):
        for i in range(sends):
            event = testbed.net.transfer("a", "b", 0.0)
            outcome = drive(env, lambda e=event: e)
            yield env.timeout(1.0)
            delivered.append("at" in outcome)

    testbed.env.process(sender(testbed.env))
    testbed.env.run(until=sends + 5.0)
    return delivered


def test_message_loss_is_seed_deterministic():
    first = _loss_pattern(seed=31)
    second = _loss_pattern(seed=31)
    assert first == second
    assert any(first) and not all(first)  # some dropped, some delivered
    assert _loss_pattern(seed=32) != first


def test_message_loss_validation_and_off_switch():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    with pytest.raises(ValueError):
        injector.set_message_loss(1.0)
    with pytest.raises(ValueError):
        injector.set_message_loss(-0.1)
    injector.set_message_loss(0.9)
    injector.set_message_loss(0.0)  # disable again
    testbed.add_node("a")
    testbed.add_node("b")
    outcome = drive(testbed.env, lambda: testbed.net.transfer("a", "b", 0.0))
    testbed.env.run(until=1.0)
    assert "at" in outcome


def test_loss_stream_does_not_perturb_crash_schedule():
    def crash_times(with_loss):
        testbed = make_testbed(seed=17)
        injector = FaultInjector(testbed)
        if with_loss:
            injector.set_message_loss(0.3)
        nodes = testbed.add_nodes("n", 6)
        injector.poisson_crashes(nodes, rate_per_second=0.1, stop_at=50.0)
        testbed.env.run(until=60.0)
        return [(e.time, e.node) for e in injector.events_of("crash")]

    assert crash_times(False) == crash_times(True)


# ------------------------------------------------------------------ race guards
def test_crash_on_dead_node_schedules_no_recovery():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    node = testbed.add_node("n")
    node.fail()  # someone else's crash
    injector.crash_at(node, at=1.0, recover_after=2.0)
    testbed.env.run(until=10.0)
    assert not node.alive  # the spurious recovery never fired
    assert injector.log == []


def test_duplicate_recovery_requests_coalesce():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    node = testbed.add_node("n")
    injector.crash_at(node, at=1.0)
    testbed.env.run(until=1.5)
    injector.crash_recovery_later(node, 3.0)
    injector.crash_recovery_later(node, 5.0)  # duplicate: first wins
    testbed.env.run(until=20.0)
    assert node.alive
    assert [e.kind for e in injector.log] == ["crash", "recover"]
    assert injector.events_of("recover")[0].time == pytest.approx(4.5)


def test_stale_recovery_timer_is_inert_across_epochs():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    node = testbed.add_node("n")
    injector.crash_at(node, at=1.0)
    testbed.env.run(until=1.5)
    injector.crash_recovery_later(node, 10.0)  # would fire at 11.5
    # Manual recover + second crash in the meantime -> new epoch.
    node.recover()
    injector.crash_at(node, at=3.0)
    testbed.env.run(until=30.0)
    # The stale timer must not resurrect epoch-2's crash.
    assert not node.alive
    assert [e.kind for e in injector.log] == ["crash", "crash"]


def test_crash_recovery_cycle_alternates_in_log():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    node = testbed.add_node("n")
    injector.crash_at(node, at=1.0, recover_after=2.0)
    injector.crash_at(node, at=10.0, recover_after=2.0)
    testbed.env.run(until=20.0)
    assert [(e.kind) for e in injector.log] == [
        "crash", "recover", "crash", "recover"
    ]
    assert node.alive


def test_second_fault_model_rejected():
    testbed = make_testbed()
    injector = FaultInjector(testbed)
    other = FaultInjector(testbed, stream="faults2")
    a = testbed.add_node("a")
    injector.partition([a])
    with pytest.raises(RuntimeError):
        other.set_message_loss(0.5)
