"""Tests for the instrumentation sinks and the RPC helper."""

import pytest

from repro.blobseer.instrument import (
    CompositeSink,
    MonitoringEvent,
    NullSink,
    RecordingSink,
)
from repro.blobseer.rpc import CONTROL_MSG_MB, request_response
from repro.cluster import Testbed, TestbedConfig


def make_event(etype="chunk_write", **fields):
    return MonitoringEvent(
        time=1.0, actor_type="provider", actor_id="p0", event_type=etype,
        fields=fields,
    )


def test_null_sink_discards():
    sink = NullSink()
    sink.emit(make_event())  # must not raise, nothing to assert


def test_recording_sink_collects_and_filters():
    sink = RecordingSink()
    sink.emit(make_event("chunk_write"))
    sink.emit(make_event("chunk_read"))
    sink.emit(make_event("chunk_write"))
    assert len(sink) == 3
    assert len(sink.of_type("chunk_write")) == 2
    assert len(sink.of_type("nothing")) == 0


def test_composite_sink_fans_out():
    a, b = RecordingSink(), RecordingSink()
    composite = CompositeSink(a)
    composite.add(b)
    composite.emit(make_event())
    assert len(a) == 1 and len(b) == 1


def test_parameter_name_includes_chunk_identity():
    plain = make_event("storage_level", used_mb=5.0)
    chunky = make_event("chunk_write", chunk="b1.c.w1.c0", size_mb=64.0)
    assert plain.parameter_name() == "provider.p0.storage_level"
    assert chunky.parameter_name().endswith(".b1.c.w1.c0")


def test_monitoring_event_is_frozen():
    event = make_event()
    with pytest.raises(AttributeError):
        event.time = 99.0


def test_request_response_costs_one_round_trip():
    bed = Testbed(TestbedConfig(seed=1, latency_local_s=0.01))
    bed.add_node("a")
    bed.add_node("b")

    def scenario(env):
        yield from request_response(bed.net, "a", "b")
        return env.now

    process = bed.env.process(scenario(bed.env))
    elapsed = bed.run(until=process)
    # Two latency-only messages (control payload is modelled as zero-size).
    assert elapsed == pytest.approx(0.02)
    assert CONTROL_MSG_MB == 0.0


def test_request_response_with_payload_consumes_bandwidth():
    bed = Testbed(TestbedConfig(seed=1, latency_local_s=0.0))
    bed.add_node("a", nic_out=100.0, nic_in=100.0)
    bed.add_node("b", nic_out=100.0, nic_in=100.0)

    def scenario(env):
        yield from request_response(bed.net, "a", "b",
                                    request_mb=100.0, response_mb=50.0)
        return env.now

    process = bed.env.process(scenario(bed.env))
    elapsed = bed.run(until=process)
    assert elapsed == pytest.approx(1.5)  # 1 s request + 0.5 s response
