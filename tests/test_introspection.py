"""Tests for the introspection layer: aggregation + visualization."""

import pytest

from repro.blobseer.instrument import (
    EV_CHUNK_READ,
    EV_CHUNK_WRITE,
    EV_NODE_PHYSICAL,
    EV_OP_END,
    EV_OP_START,
    EV_STORAGE_LEVEL,
    MonitoringEvent,
)
from repro.cluster import Testbed
from repro.introspection import (
    Dashboard,
    IntrospectionLayer,
    bar_chart,
    series_to_csv,
    sparkline,
    table,
)
from repro.monitoring import StorageRepository, StorageServer


def make_repo():
    bed = Testbed()
    server = StorageServer(bed.add_node("s0"), "s0", write_rate_eps=1e9)
    return bed, StorageRepository([server])


def ev(t, actor_type, actor_id, etype, client=None, blob=None, **fields):
    return MonitoringEvent(
        time=t, actor_type=actor_type, actor_id=actor_id, event_type=etype,
        client_id=client, blob_id=blob, fields=fields,
    )


def fill(bed, repo, events):
    repo.store(events)
    bed.run(until=bed.now + 1.0)


def test_storage_timeline_per_provider():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "provider", "p0", EV_STORAGE_LEVEL, used_mb=64.0, free_mb=100.0),
        ev(2.0, "provider", "p0", EV_STORAGE_LEVEL, used_mb=128.0, free_mb=36.0),
        ev(2.0, "provider", "p1", EV_STORAGE_LEVEL, used_mb=10.0, free_mb=90.0),
    ])
    layer = IntrospectionLayer(repo)
    assert layer.storage_timeline("p0") == [(1.0, 64.0), (2.0, 128.0)]
    latest = layer.provider_storage_latest()
    assert latest == {"p0": 128.0, "p1": 10.0}


def test_system_storage_timeline_sums_last_known():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "provider", "p0", EV_STORAGE_LEVEL, used_mb=50.0),
        ev(6.0, "provider", "p1", EV_STORAGE_LEVEL, used_mb=20.0),
    ])
    layer = IntrospectionLayer(repo)
    series = layer.system_storage_timeline(bucket_s=5.0)
    # First bucket: only p0 known (50); second: p0 + p1 (70).
    assert series[0] == (5.0, 50.0)
    assert series[1] == (10.0, 70.0)


def test_node_physical_timeline_and_hottest():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "node", "n0", EV_NODE_PHYSICAL, cpu_util=0.2),
        ev(2.0, "node", "n0", EV_NODE_PHYSICAL, cpu_util=0.9),
        ev(1.0, "node", "n1", EV_NODE_PHYSICAL, cpu_util=0.4),
    ])
    layer = IntrospectionLayer(repo)
    assert layer.node_physical_timeline("n0", "cpu_util") == [(1.0, 0.2), (2.0, 0.9)]
    assert layer.hottest_nodes("cpu_util", top=1) == [("n0", 0.9)]


def test_blob_access_stats_aggregates():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "provider", "p0", EV_CHUNK_WRITE, client="c1", blob=1, size_mb=64.0),
        ev(2.0, "provider", "p1", EV_CHUNK_WRITE, client="c1", blob=1, size_mb=64.0),
        ev(3.0, "provider", "p0", EV_CHUNK_READ, client="c2", blob=1, size_mb=64.0),
        ev(3.0, "provider", "p0", EV_CHUNK_WRITE, client="c3", blob=2, size_mb=32.0),
    ])
    layer = IntrospectionLayer(repo)
    stats = layer.blob_access_stats()
    assert stats[1].chunk_writes == 2
    assert stats[1].chunk_reads == 1
    assert stats[1].bytes_written_mb == pytest.approx(128.0)
    assert stats[1].writers == {"c1"}
    assert stats[1].readers == {"c2"}
    assert stats[2].chunk_writes == 1


def test_blob_distribution_counts_deletes():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "provider", "p0", EV_CHUNK_WRITE, blob=1, size_mb=64.0),
        ev(1.5, "provider", "p0", EV_CHUNK_WRITE, blob=1, size_mb=64.0),
        ev(2.0, "provider", "p0", "chunk_delete", blob=1, size_mb=64.0),
    ])
    layer = IntrospectionLayer(repo)
    assert layer.blob_distribution() == {1: {"p0": 1}}


def test_client_activity_window():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "client", "c1", EV_OP_START, client="c1", op="append", size_mb=128.0),
        ev(5.0, "client", "c1", EV_OP_END, client="c1", op="append",
           size_mb=128.0, ok=True, duration_s=4.0),
        ev(2.0, "provider", "p0", EV_CHUNK_WRITE, client="c1", blob=1, size_mb=64.0),
        ev(20.0, "client", "c1", EV_OP_START, client="c1", op="append"),
    ])
    layer = IntrospectionLayer(repo)
    activity = layer.client_activity(since=0.0, until=10.0)
    record = activity["c1"]
    assert record.ops_started == 1  # the t=20 op is outside the window
    assert record.ops_finished == 1
    assert record.writes == 1
    assert record.bytes_written_mb == pytest.approx(64.0)
    assert record.request_rate == pytest.approx(0.1)


def test_throughput_timeline_average_per_client():
    bed, repo = make_repo()
    # Two clients, each one op of 100 MB over 10 s (rate 10 MB/s each).
    fill(bed, repo, [
        ev(10.0, "client", "c1", EV_OP_END, client="c1", op="append",
           size_mb=100.0, ok=True, duration_s=10.0),
        ev(10.0, "client", "c2", EV_OP_END, client="c2", op="append",
           size_mb=100.0, ok=True, duration_s=10.0),
    ])
    layer = IntrospectionLayer(repo)
    series = layer.throughput_timeline(bucket_s=5.0)
    # Average per client is 10 MB/s in both buckets.
    assert [round(v, 3) for _t, v in series] == [10.0, 10.0]


def test_throughput_timeline_filters_failed_ops():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(10.0, "client", "c1", EV_OP_END, client="c1", op="append",
           size_mb=100.0, ok=False, duration_s=10.0),
    ])
    layer = IntrospectionLayer(repo)
    assert layer.throughput_timeline(bucket_s=5.0) == []


# ------------------------------------------------------------------ visualization
def test_sparkline_shapes():
    assert sparkline([]) == "(no data)"
    assert len(sparkline([1, 2, 3])) == 3
    flat = sparkline([5, 5, 5])
    assert len(set(flat)) == 1
    rising = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert rising[0] != rising[-1]


def test_sparkline_downsamples_long_series():
    assert len(sparkline(list(range(1000)), width=50)) == 50


def test_bar_chart_renders_labels_and_values():
    chart = bar_chart([("p0", 100.0), ("p1", 50.0)], unit=" MB")
    lines = chart.splitlines()
    assert "p0" in lines[0] and "100.0 MB" in lines[0]
    assert lines[0].count("#") > lines[1].count("#")


def test_table_renders_rows():
    text = table(["a", "bb"], [[1, 2], [3, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]


def test_series_to_csv():
    csv = series_to_csv([(1.0, 2.5)], header="t,v")
    assert csv.splitlines() == ["t,v", "1.000,2.500000"]


def test_dashboard_renders_all_panels():
    bed, repo = make_repo()
    fill(bed, repo, [
        ev(1.0, "provider", "p0", EV_STORAGE_LEVEL, used_mb=64.0),
        ev(1.0, "provider", "p0", EV_CHUNK_WRITE, client="c1", blob=1, size_mb=64.0),
        ev(2.0, "node", "n0", EV_NODE_PHYSICAL, cpu_util=0.5),
        ev(9.0, "client", "c1", EV_OP_END, client="c1", op="append",
           size_mb=64.0, ok=True, duration_s=4.0),
    ])
    dashboard = Dashboard(IntrospectionLayer(repo))
    text = dashboard.render(node_names=["n0"])
    for heading in (
        "Storage space per provider",
        "System storage over time",
        "BLOB access patterns",
        "BLOB distribution",
        "Average client throughput",
        "Physical parameter",
    ):
        assert heading in text
