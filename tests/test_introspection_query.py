"""Introspection query engine, repository cursors, and health signals."""

import pytest

from repro.adaptation.controller import AdaptationDecision, ControlLoop
from repro.blobseer.instrument import EV_CHUNK_READ, EV_CHUNK_WRITE, MonitoringEvent
from repro.cluster import Testbed
from repro.introspection import (
    EwmaZScore,
    HealthEvent,
    HealthMonitor,
    QueryEngine,
    SLORule,
)
from repro.monitoring import StorageRepository, StorageServer
from repro.telemetry.metrics import Histogram, MetricsRegistry


def ev(t, actor_id="provider-0", etype=EV_CHUNK_WRITE, blob=1, chunk=None,
       size=0.0, count=1):
    fields = {"count": count, "size_mb": size}
    if chunk is not None:
        fields["chunk"] = chunk
    return MonitoringEvent(
        time=t, actor_type="provider", actor_id=actor_id, event_type=etype,
        client_id="c", blob_id=blob, fields=fields,
    )


def make_repo(n=2, rate=1e9):
    bed = Testbed()
    servers = [
        StorageServer(bed.add_node(f"s{i}"), f"s{i}", write_rate_eps=rate)
        for i in range(n)
    ]
    return bed, StorageRepository(servers)


# ------------------------------------------------------------------ repository
def test_ordered_records_handles_out_of_order_batches():
    bed, repo = make_repo(n=1)
    server = repo.servers[0]
    # One batch whose events carry non-monotonic times (two monitoring
    # services flushing interleaved histories).
    server.offer([ev(5.0), ev(3.0), ev(9.0)])
    bed.run(until=1.0)

    assert [e.time for e in server.records] == [5.0, 3.0, 9.0]
    ordered = server.ordered_records()
    assert [e.time for e in ordered] == [3.0, 5.0, 9.0]
    # The sorted view is cached until the next persist.
    assert server.ordered_records() is ordered


def test_records_since_matches_stable_sort_reference():
    bed, repo = make_repo(n=3)
    times = [7.0, 1.0, 5.0, 3.0, 3.0, 9.0, 2.0, 8.0, 4.0, 6.0]
    repo.store([
        ev(t, actor_id=f"provider-{i % 4}", chunk=f"b1:{i}")
        for i, t in enumerate(times)
    ])
    bed.run(until=1.0)
    assert repo.stored_count == len(times)

    # Historical semantics: stable sort of per-server records in server
    # order.
    reference = sorted(
        (e for server in repo.servers for e in server.records),
        key=lambda e: e.time,
    )
    assert repo.all_records() == reference
    assert repo.records_since(4.0) == [e for e in reference if e.time >= 4.0]
    # t0 landing exactly on a record time includes that record.
    assert repo.records_since(3.0)[0].time == 3.0
    assert repo.records_since(100.0) == []


def test_repository_cursor_is_incremental():
    bed, repo = make_repo(n=2)
    cursor = repo.cursor()
    assert cursor.pending() == 0
    assert cursor.advance() == []

    repo.store([ev(1.0, actor_id=f"provider-{i}", chunk=f"b1:{i}")
                for i in range(4)])
    bed.run(until=1.0)
    assert cursor.pending() == 4
    first = cursor.advance()
    assert len(first) == 4
    assert cursor.pending() == 0
    assert cursor.advance() == []

    repo.store([ev(3.0, chunk="b1:9"), ev(2.0, chunk="b1:8")])
    bed.run(until=2.0)
    second = cursor.advance()
    # Only the new records, time-ordered.
    assert [e.time for e in second] == [2.0, 3.0]


# ------------------------------------------------------------------ windows
def test_window_stats_over_metrics_series():
    registry = MetricsRegistry()
    for t in range(100):
        registry.sample("x", float(t), time=float(t))
    engine = QueryEngine(metrics=registry, window_s=10.0)

    # Half-open window: 89 < t <= 99 -> values 90..99.
    assert engine.window_stat("x", "mean", now=99.0) == pytest.approx(94.5)
    assert engine.window_stat("x", "min", now=99.0) == 90.0
    assert engine.window_stat("x", "max", now=99.0) == 99.0
    assert engine.window_stat("x", "sum", now=99.0) == pytest.approx(945.0)
    assert engine.window_stat("x", "latest", now=99.0) == 99.0
    assert engine.window_stat("x", "count", now=99.0) == 10.0
    assert engine.window_stat("x", "rate", now=99.0) == pytest.approx(1.0)
    assert engine.window_stat("x", "value_rate", now=99.0) == pytest.approx(94.5)
    assert engine.window_percentile("x", 90, now=99.0) == 98.0
    # Far past the data the window is empty.
    assert engine.window_stat("x", "mean", now=500.0) is None
    with pytest.raises(ValueError):
        engine.window_stat("x", "bogus", now=99.0)


def test_rollups_sites_and_hot_reports():
    bed, repo = make_repo(n=2)
    sites = {"provider-0": "rack-A", "provider-1": "rack-A",
             "provider-2": "rack-B"}
    engine = QueryEngine(repository=repo, env=bed.env, window_s=60.0,
                         site_of=sites)
    repo.store([
        ev(10.0, "provider-0", EV_CHUNK_WRITE, blob=1, chunk="b1:0", size=32.0),
        ev(11.0, "provider-0", EV_CHUNK_READ, blob=1, chunk="b1:0", size=32.0),
        ev(12.0, "provider-1", EV_CHUNK_WRITE, blob=2, chunk="b2:0", size=64.0),
        ev(13.0, "provider-2", EV_CHUNK_READ, blob=1, chunk="b1:0", size=32.0),
        ev(14.0, "provider-2", EV_CHUNK_READ, blob=1, chunk="b1:1", size=32.0),
    ])
    bed.run(until=1.0)

    providers = engine.provider_rollup(now=20.0)
    assert providers["provider-0"].chunk_writes == 1
    assert providers["provider-0"].chunk_reads == 1
    assert providers["provider-0"].mb_written == 32.0
    assert providers["provider-2"].mb_read == 64.0
    assert providers["provider-2"].ops_per_s == pytest.approx(2 / 60.0)

    by_site = engine.site_rollup(now=20.0)
    assert set(by_site) == {"rack-A", "rack-B"}
    assert by_site["rack-A"].ops == 3
    assert by_site["rack-A"].actors == {"provider-0", "provider-1"}
    assert by_site["rack-B"].mb_per_s == pytest.approx(64.0 / 60.0)

    assert engine.hot_blobs(top=2, now=20.0) == [(1, 4, 128.0), (2, 1, 64.0)]
    assert engine.hot_chunks(top=1, now=20.0) == [("b1:0", 3)]
    # Out-of-window queries see nothing.
    assert engine.provider_rollup(window_s=5.0, now=100.0) == {}


def test_events_in_window_refreshes_incrementally():
    bed, repo = make_repo(n=1)
    engine = QueryEngine(repository=repo, env=bed.env, window_s=100.0)
    repo.store([ev(1.0, chunk="b1:0")])
    bed.run(until=1.0)
    assert len(engine.events_in_window(now=50.0)) == 1

    repo.store([ev(2.0, chunk="b1:1"), ev(3.0, chunk="b1:2")])
    bed.run(until=2.0)
    assert len(engine.events_in_window(now=50.0)) == 3
    assert len(engine.events_in_window(now=50.0, event_type=EV_CHUNK_WRITE)) == 3
    assert engine.events_in_window(now=50.0, actor_type="client") == []


# ------------------------------------------------------------------ histogram
def test_histogram_reservoir_keeps_unbiased_sample():
    h = Histogram("lat", max_samples=200)
    for v in range(2000):
        h.observe(float(v))
    assert h.count == 2000
    assert len(h._samples) == 200
    assert h.min == 0.0 and h.max == 1999.0
    assert h.mean == pytest.approx(999.5)
    # First-N retention would cap every percentile at 199; the reservoir
    # keeps late values too.
    assert h.percentile(99) > 500.0
    assert 500.0 < h.percentile(50) < 1500.0

    # Seeded by name: a replay yields the identical reservoir.
    h2 = Histogram("lat", max_samples=200)
    for v in range(2000):
        h2.observe(float(v))
    assert h2._samples == h._samples
    assert h2.to_dict() == h.to_dict()


def test_histogram_small_sample_exact_and_cache_refresh():
    h = Histogram("x")
    for v in (5.0, 1.0, 3.0):
        h.observe(v)
    assert h.percentile(50) == 3.0
    assert h.to_dict()["p50"] == 3.0
    # New observations invalidate the cached sorted view.
    h.observe(0.0)
    h.observe(0.5)
    assert h.percentile(0) == 0.0
    assert h.percentile(50) == 1.0
    assert h.percentile(100) == 5.0


# ------------------------------------------------------------------ health
def test_slo_rule_is_edge_triggered_with_recovery():
    bed = Testbed()
    registry = MetricsRegistry(bed.env)
    engine = QueryEngine(metrics=registry, env=bed.env, window_s=10.0)
    monitor = HealthMonitor(engine, rules=[
        SLORule("tput", statistic="mean", min_value=50.0, window_s=10.0,
                description="min throughput"),
    ])

    registry.sample("tput", 10.0, time=1.0)
    events = monitor.check(now=2.0)
    assert len(events) == 1
    violation = events[0]
    assert violation.kind == "slo"
    assert violation.severity == "critical"
    assert violation.signal == "tput"
    assert violation.reference == 50.0
    assert violation.value == 10.0

    # A sustained violation does not re-fire.
    assert monitor.check(now=3.0) == []
    assert monitor.active_violations() == ["tput:mean"]

    # Healing emits exactly one recovery event.
    registry.sample("tput", 500.0, time=4.0)
    recoveries = monitor.check(now=5.0)
    assert len(recoveries) == 1
    assert recoveries[0].kind == "recovery"
    assert recoveries[0].severity == "info"
    assert monitor.active_violations() == []

    # Events are mirrored into metrics for the dashboards.
    assert registry.counter("health.slo_total").value == 1
    assert registry.counter("health.recovery_total").value == 1
    assert len(registry.series("health.events")) == 2


def test_ewma_zscore_flags_spikes_not_noise():
    tracker = EwmaZScore(alpha=0.2, min_samples=5)
    scores = [
        tracker.score_and_update(10.0 + (0.1 if i % 2 else -0.1))
        for i in range(20)
    ]
    assert all(z is None for z in scores[:5])  # warm-up
    assert all(abs(z) < 3.0 for z in scores[5:])
    spike = tracker.score_and_update(100.0)
    assert spike > 3.0


def test_health_monitor_detects_anomaly_in_series():
    bed = Testbed()
    registry = MetricsRegistry(bed.env)
    engine = QueryEngine(metrics=registry, env=bed.env, window_s=30.0)
    monitor = HealthMonitor(engine, anomaly_signals=["lat"], z_threshold=3.0,
                            min_samples=5)

    for i in range(20):
        registry.sample("lat", 10.0 + (0.1 if i % 2 else -0.1), time=float(i))
    registry.sample("lat", 200.0, time=20.0)

    events = monitor.check(now=25.0)
    anomalies = [e for e in events if e.kind == "anomaly"]
    assert len(anomalies) == 1
    anomaly = anomalies[0]
    assert anomaly.signal == "lat"
    assert anomaly.time == 20.0
    assert anomaly.detail["sample"] == 200.0
    assert abs(anomaly.value) >= 3.0
    assert registry.counter("health.anomaly_total").value == 1
    # The per-signal cursor means a re-check scores nothing twice.
    assert monitor.check(now=26.0) == []


def test_health_monitor_runs_as_sim_process():
    bed = Testbed()
    env = bed.env
    registry = MetricsRegistry(env)
    engine = QueryEngine(metrics=registry, env=env, window_s=5.0)
    monitor = HealthMonitor(engine, rules=[
        SLORule("queue", statistic="latest", max_value=5.0, window_s=5.0,
                severity="warning"),
    ], interval_s=1.0)
    monitor.start(env)

    def feeder(env):
        yield env.timeout(2.2)
        registry.sample("queue", 9.0)

    env.process(feeder(env))
    bed.run(until=6.0)
    assert any(e.kind == "slo" and e.severity == "warning"
               for e in monitor.events)


# ------------------------------------------------------------------ control loop
class _Recorder(ControlLoop):
    name = "recorder"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.seen = []

    def step(self, now):
        self.seen.append((now, list(self.health_inbox)))
        if self.health_inbox:
            return [AdaptationDecision(time=now, engine=self.name,
                                       action="react")]
        return []


def test_control_loop_receives_health_events():
    bed = Testbed()
    env = bed.env
    registry = MetricsRegistry(env)
    engine = QueryEngine(metrics=registry, env=env, window_s=10.0)
    monitor = HealthMonitor(engine, rules=[
        SLORule("tput", statistic="mean", min_value=50.0, window_s=10.0),
    ])
    loop = _Recorder(interval_s=1.0, cooldown_s=100.0).attach_health(monitor)
    env.process(loop.run(env))

    def scenario(env):
        yield env.timeout(2.5)
        registry.sample("tput", 10.0)
        monitor.check(env.now)

    env.process(scenario(env))
    bed.run(until=5.5)

    inboxes = [inbox for _t, inbox in loop.seen if inbox]
    assert inboxes, "loop never saw the SLO violation"
    assert inboxes[0][0].kind == "slo"
    assert loop.decisions_of("react")

    # The reacting step armed a 100 s cooldown; a *critical* health event
    # must override it...
    steps_before = loop.steps
    monitor.events.append(HealthEvent(
        time=env.now, signal="emergency", kind="slo", severity="critical",
        value=1.0, reference=2.0,
    ))
    bed.run(until=env.now + 2.5)
    assert loop.steps > steps_before
    assert any(e.signal == "emergency" for _t, inbox in loop.seen
               for e in inbox)

    # ...while an info-level event alone stays queued until cooldown ends.
    steps_before = loop.steps
    monitor.events.append(HealthEvent(
        time=env.now, signal="routine", kind="recovery", severity="info",
        value=1.0, reference=0.0,
    ))
    bed.run(until=env.now + 3.5)
    assert loop.steps == steps_before
