"""Determinism regression: incremental fairness must be invisible.

The incremental max-min recomputation (component-local passes, anchor
based progress, completion-horizon heap) is a pure performance change:
for any seed, the simulated results must be *byte-identical* to the
old always-global recomputation, which ``incremental=False`` preserves
through the very same code path (every pass simply solves the full flow
set).  These tests run the two real experiment scenarios the repo's
trajectory is built on — the EXP-A concurrent-write workload and the
hot-spot cached-read workload — at two seeds under both modes and
compare every exact observable:

- the per-flow completion log (kind, fid, exact completion instant),
- ``total_delivered`` and the final simulation clock,
- the reallocation-pass count and total kernel event count,
- the final metrics registry snapshot (when the scenario records one).

Everything is compared with ``==`` — no tolerances anywhere.
"""

from repro.workloads.scenarios import build_hotspot_scenario, build_write_scenario


def _fingerprint(deployment, net):
    env = deployment.env
    snap = env.metrics.to_dict() if env.metrics is not None else None
    return {
        "end": env.now,
        "events": env.events_processed,
        "delivered": net.total_delivered,
        "reallocations": net.reallocations,
        "completions": list(net.completion_log),
        "metrics": snap,
    }


def _run_write(seed, incremental):
    scenario = build_write_scenario(
        clients=3,
        data_providers=10,
        metadata_providers=2,
        op_mb=48.0,
        ops_per_client=1,
        chunk_size_mb=8.0,
        with_monitoring=True,
        monitoring_services=2,
        seed=seed,
    )
    net = scenario.deployment.testbed.net
    net.incremental = incremental
    net.completion_log = []
    scenario.run()
    return _fingerprint(scenario.deployment, net)


def _run_hotspot(seed, incremental):
    scenario = build_hotspot_scenario(
        readers=3,
        dataset_chunks=12,
        chunk_size_mb=4.0,
        reads_per_client=8,
        data_providers=6,
        metadata_providers=2,
        with_caches=True,
        with_metrics=True,
        seed=seed,
    )
    net = scenario.deployment.testbed.net
    net.incremental = incremental
    net.completion_log = []
    scenario.run()
    return _fingerprint(scenario.deployment, net)


def test_write_scenario_bit_identical_across_modes():
    for seed in (0, 7):
        full = _run_write(seed, incremental=False)
        fast = _run_write(seed, incremental=True)
        assert full == fast, f"seed {seed}: incremental fairness changed results"


def test_hotspot_scenario_bit_identical_across_modes():
    for seed in (0, 7):
        full = _run_hotspot(seed, incremental=False)
        fast = _run_hotspot(seed, incremental=True)
        assert full == fast, f"seed {seed}: incremental fairness changed results"


def test_hotspot_scenario_seed_sensitivity():
    # Different seeds must give different runs (guards against the
    # fingerprint accidentally comparing trivial constants).  The
    # hotspot scenario samples Zipf-skewed reads, so the seed matters.
    a = _run_hotspot(0, incremental=True)
    b = _run_hotspot(7, incremental=True)
    assert a != b
