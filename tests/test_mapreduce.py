"""Tests for the MapReduce-style workload."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import FaultInjector, TestbedConfig
from repro.workloads import MapReduceConfig, MapReduceJob


def make_deployment(providers=12, seed=15):
    return BlobSeerDeployment(BlobSeerConfig(
        data_providers=providers,
        metadata_providers=2,
        chunk_size_mb=64.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=seed, rate_granularity_s=0.01),
    ))


def run_job(deployment, config, job_id="job"):
    job = MapReduceJob(deployment, config, job_id=job_id)
    process = deployment.env.process(job.run(deployment.env))
    deployment.run(until=process)
    return job


def test_job_completes_all_stages():
    deployment = make_deployment()
    job = run_job(deployment, MapReduceConfig(
        input_mb=1024.0, map_tasks=8, reduce_tasks=2,
    ))
    summary = job.summary()
    assert job.failed_tasks == 0
    assert summary["input_s"] > 0
    assert summary["map_s"] > 0
    assert summary["reduce_s"] > 0
    assert job.output_blob is not None
    assert summary["output_mb"] > 0


def test_map_stage_reads_concurrently_faster_than_serial_input():
    """The headline BlobSeer property: concurrent fine-grained reads
    aggregate far beyond a single stream."""
    deployment = make_deployment(providers=16)
    job = run_job(deployment, MapReduceConfig(
        input_mb=2048.0, map_tasks=16, reduce_tasks=2, map_cpu_s_per_mb=0.0,
    ))
    input_rate = job.stats["input"].throughput_mbps
    map_rate = job.stats["map"].throughput_mbps
    assert map_rate > 3.0 * input_rate, (input_rate, map_rate)


def test_intermediate_blobs_one_per_map():
    deployment = make_deployment()
    job = run_job(deployment, MapReduceConfig(
        input_mb=512.0, map_tasks=4, reduce_tasks=2,
    ))
    assert sorted(job.intermediate) == [0, 1, 2, 3]
    for blob_id in job.intermediate.values():
        version, size_mb, _chunk = deployment.vmanager.latest(blob_id)
        assert version >= 1 and size_mb > 0


def test_output_size_reflects_selectivities():
    deployment = make_deployment()
    config = MapReduceConfig(
        input_mb=1024.0, map_tasks=4, reduce_tasks=2,
        map_selectivity=0.25, reduce_selectivity=0.5,
    )
    job = run_job(deployment, config)
    # map out: ceil(64*0.25 -> padded to 64) per task = 64 MB x 4 = 256;
    # reduce out: per reduce, 128 MB in * 0.5 -> padded 64 MB x 2 = 128.
    assert job.summary()["output_mb"] == pytest.approx(128.0)


def test_invalid_configs_rejected():
    deployment = make_deployment()
    with pytest.raises(ValueError):
        MapReduceJob(deployment, MapReduceConfig(input_mb=1000.0))  # not chunk-aligned
    with pytest.raises(ValueError):
        MapReduceJob(deployment, MapReduceConfig(input_mb=1024.0, map_tasks=5))


def test_job_survives_provider_crash_with_replication():
    deployment = BlobSeerDeployment(BlobSeerConfig(
        data_providers=12,
        metadata_providers=2,
        chunk_size_mb=64.0,
        replication=2,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=16, rate_granularity_s=0.01),
    ))
    injector = FaultInjector(deployment.testbed)
    injector.crash_at(deployment.providers["provider-3"].node, at=15.0)
    job = run_job(deployment, MapReduceConfig(
        input_mb=1024.0, map_tasks=8, reduce_tasks=2,
    ))
    # With 2 replicas, the crash mid-job must not fail any reads.
    assert job.failed_tasks == 0
    assert job.summary()["output_mb"] > 0


def test_two_jobs_share_the_deployment():
    deployment = make_deployment(providers=16)
    config = MapReduceConfig(input_mb=512.0, map_tasks=4, reduce_tasks=2)
    job_a = MapReduceJob(deployment, config, job_id="a")
    job_b = MapReduceJob(deployment, config, job_id="b")
    process_a = deployment.env.process(job_a.run(deployment.env))
    process_b = deployment.env.process(job_b.run(deployment.env))
    deployment.run(until=deployment.env.all_of([process_a, process_b]))
    assert job_a.failed_tasks == 0 and job_b.failed_tasks == 0
    assert job_a.output_blob != job_b.output_blob
