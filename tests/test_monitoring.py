"""Tests for the monitoring layer: filters, repository, pipeline."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.blobseer.instrument import (
    EV_CHUNK_WRITE,
    EV_NODE_PHYSICAL,
    EV_OP_END,
    MonitoringEvent,
)
from repro.cluster import Testbed, TestbedConfig
from repro.monitoring import (
    FilterChain,
    MonitoringConfig,
    MonitoringStack,
    RateLimitFilter,
    SamplingFilter,
    StorageRepository,
    StorageServer,
    TypeFilter,
    WindowAggregateFilter,
)


def make_event(t=0.0, actor="p0", etype=EV_CHUNK_WRITE, client=None, **fields):
    return MonitoringEvent(
        time=t, actor_type="provider", actor_id=actor, event_type=etype,
        client_id=client, fields=fields,
    )


# ------------------------------------------------------------------ filters
def test_type_filter_keeps_allowed():
    f = TypeFilter([EV_CHUNK_WRITE])
    events = [make_event(etype=EV_CHUNK_WRITE), make_event(etype=EV_OP_END)]
    assert [e.event_type for e in f.apply(events)] == [EV_CHUNK_WRITE]


def test_sampling_filter_keeps_every_nth_per_parameter():
    f = SamplingFilter(every=3)
    events = [make_event(t=i, actor="p0") for i in range(9)]
    kept = f.apply(events)
    assert [e.time for e in kept] == [0, 3, 6]


def test_sampling_filter_independent_streams():
    f = SamplingFilter(every=2)
    events = [make_event(t=i, actor=f"p{i % 2}") for i in range(8)]
    kept = f.apply(events)
    # Each actor's stream is sampled separately: both keep 2 of 4.
    assert sum(1 for e in kept if e.actor_id == "p0") == 2
    assert sum(1 for e in kept if e.actor_id == "p1") == 2


def test_rate_limit_filter_caps_window():
    f = RateLimitFilter(max_per_window=2, window_s=10.0)
    events = [make_event(t=i) for i in range(5)]
    assert len(f.apply(events)) == 2
    # A new window admits events again.
    later = [make_event(t=20.0 + i) for i in range(5)]
    assert len(f.apply(later)) == 2


def test_window_aggregate_filter_collapses_batches():
    f = WindowAggregateFilter([EV_CHUNK_WRITE], sum_field="size_mb")
    events = [make_event(t=i, client="c1", size_mb=64.0) for i in range(4)]
    out = f.apply(events)
    assert len(out) == 1
    assert out[0].fields["count"] == 4
    assert out[0].fields["size_mb"] == pytest.approx(256.0)


def test_filter_chain_composes():
    chain = FilterChain(TypeFilter([EV_CHUNK_WRITE]), SamplingFilter(every=2))
    events = [make_event(t=i) for i in range(4)] + [make_event(etype=EV_OP_END)]
    assert len(chain.apply(events)) == 2


# ------------------------------------------------------------------ repository
def test_storage_server_persists_at_bounded_rate():
    bed = Testbed()
    node = bed.add_node("s0")
    server = StorageServer(node, "s0", write_rate_eps=100.0, buffer_capacity=1000)
    server.offer([make_event(t=0.0) for _ in range(50)])
    bed.run(until=0.2)
    assert len(server.records) < 50  # still draining
    bed.run(until=2.0)
    assert len(server.records) == 50
    assert server.dropped == 0


def test_storage_server_drops_on_overflow_without_cache():
    bed = Testbed()
    node = bed.add_node("s0")
    server = StorageServer(node, "s0", write_rate_eps=10.0, buffer_capacity=10,
                           burst_cache_capacity=0)
    dropped = server.offer([make_event() for _ in range(50)])
    assert dropped == 40
    assert server.dropped == 40


def test_burst_cache_absorbs_overflow():
    bed = Testbed()
    node = bed.add_node("s0")
    server = StorageServer(node, "s0", write_rate_eps=10.0, buffer_capacity=10,
                           burst_cache_capacity=100)
    dropped = server.offer([make_event() for _ in range(50)])
    assert dropped == 0
    assert server.cached_peak == 40
    # The cache reserves server memory.
    assert node.memory_used_mb > 0


def test_repository_shards_and_queries():
    bed = Testbed()
    servers = [
        StorageServer(bed.add_node(f"s{i}"), f"s{i}", write_rate_eps=1e6)
        for i in range(3)
    ]
    repo = StorageRepository(servers)
    events = [make_event(t=float(i), actor=f"p{i}") for i in range(30)]
    repo.store(events)
    bed.run(until=1.0)
    assert repo.stored_count == 30
    assert repo.dropped_count == 0
    # Sharding used more than one server for 30 distinct parameters.
    assert sum(1 for s in servers if s.records) >= 2
    assert [e.time for e in repo.all_records()] == sorted(e.time for e in events)
    assert len(repo.records_since(15.0)) == 15


# ------------------------------------------------------------------ pipeline
def deploy_with_monitoring(clients=2, **mon_overrides):
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=6, metadata_providers=2, testbed=TestbedConfig(seed=5),
    ))
    config = MonitoringConfig(
        services=2, storage_servers=2, flush_interval_s=0.5, **mon_overrides
    )
    stack = MonitoringStack(dep.testbed, config)
    stack.attach(dep)
    cs = [dep.new_client(f"c{i}") for i in range(clients)]
    return dep, stack, cs


def test_pipeline_delivers_events_to_repository():
    dep, stack, clients = deploy_with_monitoring()

    def scenario(env):
        blob_id = yield env.process(clients[0].create_blob(64.0))
        yield env.process(clients[0].append(blob_id, 256.0))
        yield env.process(clients[1].read(blob_id, 0.0, 256.0))

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    dep.run(until=dep.now + 5.0)  # let flushers and writers drain
    stats = stack.stats()
    assert stats["emitted"] > 0
    assert stats["stored"] > 0
    assert stats["stored"] + stats["dropped"] <= stats["emitted"]
    assert stats["parameters"] >= 5


def test_pipeline_event_types_preserved():
    dep, stack, clients = deploy_with_monitoring()

    def scenario(env):
        blob_id = yield env.process(clients[0].create_blob(64.0))
        yield env.process(clients[0].append(blob_id, 128.0))

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    dep.run(until=dep.now + 5.0)
    types = {e.event_type for e in stack.repository.all_records()}
    assert "chunk_write" in types
    assert "ticket" in types
    assert "publish" in types


def test_physical_sensors_sample_nodes():
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=3, metadata_providers=1, testbed=TestbedConfig(seed=5),
    ))
    stack = MonitoringStack(dep.testbed, MonitoringConfig(
        flush_interval_s=0.5,
        physical_sample_interval_s=1.0,
        sensor_stop_at=10.0,
    ))
    stack.attach(dep, sensors=True)
    dep.run(until=15.0)
    physical = [
        e for e in stack.repository.all_records()
        if e.event_type == EV_NODE_PHYSICAL
    ]
    assert physical
    sample = physical[0]
    assert "cpu_util" in sample.fields
    assert "disk_used_mb" in sample.fields


def test_monitoring_flush_latency_bounded():
    """Events must reach the repository within a few flush intervals."""
    dep, stack, clients = deploy_with_monitoring()

    def scenario(env):
        blob_id = yield env.process(clients[0].create_blob(64.0))
        yield env.process(clients[0].append(blob_id, 64.0))

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    op_end_time = dep.now
    dep.run(until=op_end_time + 3.0)
    stored_types = {e.event_type for e in stack.repository.all_records()}
    assert "chunk_write" in stored_types  # arrived within 3 s (6 flushes)
