"""Unit tests for the flow-level max-min fair network model."""

import pytest

from repro.simulation import Environment, FlowNetwork, NetNode, TransferAborted


def make_net(env, latency=0.0, **kwargs):
    net = FlowNetwork(env, latency=latency, **kwargs)
    return net


def test_single_flow_runs_at_bottleneck():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0, capacity_in=100.0))
    net.add_node(NetNode("b", capacity_out=50.0, capacity_in=50.0))
    done = net.transfer("a", "b", size=100.0)
    flow = env.run(until=done)
    # Bottleneck is b's 50 MB/s downlink: 100 MB takes 2 s.
    assert env.now == pytest.approx(2.0)
    assert flow.finished_at == pytest.approx(2.0)


def test_two_flows_share_receiver_fairly():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_out=100.0))
    net.add_node(NetNode("sink", capacity_in=100.0))
    d1 = net.transfer("a", "sink", 100.0)
    d2 = net.transfer("b", "sink", 100.0)
    env.run(until=env.all_of([d1, d2]))
    # Each gets 50 MB/s; both finish at t=2.
    assert env.now == pytest.approx(2.0)


def test_flow_speeds_up_when_competitor_finishes():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_out=100.0))
    net.add_node(NetNode("sink", capacity_in=100.0))
    small = net.transfer("a", "sink", 50.0)
    large = net.transfer("b", "sink", 150.0)
    env.run(until=small)
    t_small = env.now
    env.run(until=large)
    t_large = env.now
    # Phase 1: both at 50 MB/s; small done at t=1 (50MB).
    assert t_small == pytest.approx(1.0)
    # Large has 100 MB left, now at full 100 MB/s: finishes at t=2.
    assert t_large == pytest.approx(2.0)


def test_max_min_fairness_with_capped_flow():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_out=100.0))
    net.add_node(NetNode("sink", capacity_in=90.0))
    # One flow capped at 10 MB/s; the other should get the remaining 80.
    slow = net.transfer("a", "sink", 10.0, rate_cap=10.0)
    fast = net.transfer("b", "sink", 80.0)
    env.run(until=env.all_of([slow, fast]))
    assert env.now == pytest.approx(1.0)


def test_latency_delays_message():
    env = Environment()
    net = make_net(env, latency=0.25)
    net.add_node(NetNode("a"))
    net.add_node(NetNode("b"))
    done = net.message("a", "b")
    env.run(until=done)
    assert env.now == pytest.approx(0.25)


def test_latency_callable_per_pair():
    env = Environment()

    def latency(src, dst):
        return 1.0 if src.site != dst.site else 0.1

    net = make_net(env, latency=latency)
    net.add_node(NetNode("a", site="s1"))
    net.add_node(NetNode("b", site="s2"))
    net.add_node(NetNode("c", site="s1"))
    cross = net.message("a", "b")
    env.run(until=cross)
    assert env.now == pytest.approx(1.0)
    local = net.message("a", "c")
    env.run(until=local)
    assert env.now == pytest.approx(1.1)


def test_backbone_constrains_cross_site_flows():
    env = Environment()
    net = make_net(env, backbone_capacity=10.0)
    net.add_node(NetNode("a", capacity_out=100.0, site="s1"))
    net.add_node(NetNode("b", capacity_in=100.0, site="s2"))
    done = net.transfer("a", "b", 10.0)
    env.run(until=done)
    # Backbone 10 MB/s is the bottleneck: 10 MB takes 1 s.
    assert env.now == pytest.approx(1.0)


def test_same_site_ignores_backbone():
    env = Environment()
    net = make_net(env, backbone_capacity=1.0)
    net.add_node(NetNode("a", capacity_out=100.0, site="s1"))
    net.add_node(NetNode("b", capacity_in=100.0, site="s1"))
    done = net.transfer("a", "b", 100.0)
    env.run(until=done)
    assert env.now == pytest.approx(1.0)


def test_abort_fails_waiter():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=10.0))
    net.add_node(NetNode("b", capacity_in=10.0))

    def proc(env):
        done = net.transfer("a", "b", 100.0, tag="victim")
        try:
            yield done
        except TransferAborted as exc:
            return ("aborted", exc.reason, env.now)
        return "finished"

    def killer(env):
        yield env.timeout(2.0)
        net.abort_matching(lambda f: f.tag == "victim", reason="blocked")

    process = env.process(proc(env))
    env.process(killer(env))
    result = env.run(until=process)
    assert result == ("aborted", "blocked", 2.0)
    assert net.active_flow_count() == 0


def test_remove_node_aborts_its_flows():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=10.0))
    net.add_node(NetNode("b", capacity_in=10.0))

    def proc(env):
        done = net.transfer("a", "b", 1000.0)
        try:
            yield done
        except TransferAborted:
            return "aborted"
        return "finished"

    def failer(env):
        yield env.timeout(1.0)
        net.remove_node("b")

    process = env.process(proc(env))
    env.process(failer(env))
    assert env.run(until=process) == "aborted"
    assert "b" not in net.nodes


def test_progress_accounting_total_delivered():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_in=100.0))
    done = net.transfer("a", "b", 42.0)
    env.run(until=done)
    env.run(until=env.now + 0.001)
    assert net.total_delivered == pytest.approx(42.0, abs=1e-6)


def test_node_load_reports_rates():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_in=60.0))
    net.transfer("a", "b", 1000.0)

    def probe(env):
        yield env.timeout(0.5)
        out_rate, _ = net.node_load("a")
        _, in_rate = net.node_load("b")
        return out_rate, in_rate

    process = env.process(probe(env))
    out_rate, in_rate = env.run(until=process)
    assert out_rate == pytest.approx(60.0)
    assert in_rate == pytest.approx(60.0)


def test_many_flows_saturate_shared_sink():
    env = Environment()
    net = make_net(env)
    for i in range(10):
        net.add_node(NetNode(f"src{i}", capacity_out=100.0))
    net.add_node(NetNode("sink", capacity_in=100.0))
    events = [net.transfer(f"src{i}", "sink", 10.0) for i in range(10)]
    env.run(until=env.all_of(events))
    # 100 MB total through a 100 MB/s sink: 1 s.
    assert env.now == pytest.approx(1.0)


def test_duplicate_node_rejected():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    with pytest.raises(ValueError):
        net.add_node(NetNode("a"))


def test_negative_size_rejected():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    net.add_node(NetNode("b"))
    with pytest.raises(ValueError):
        net.transfer("a", "b", -1.0)


def test_staggered_flows_exact_completion_times():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a", capacity_out=100.0))
    net.add_node(NetNode("b", capacity_out=100.0))
    net.add_node(NetNode("sink", capacity_in=100.0))
    first = net.transfer("a", "sink", 100.0)

    finish_times = {}

    def second_starter(env):
        yield env.timeout(0.5)
        second = net.transfer("b", "sink", 100.0)
        yield second
        finish_times["second"] = env.now

    def first_waiter(env):
        yield first
        finish_times["first"] = env.now

    env.process(second_starter(env))
    env.process(first_waiter(env))
    env.run()
    # t<0.5: first alone at 100 MB/s -> 50 MB moved.
    # t in [0.5, 1.5]: both at 50 MB/s -> first done at 1.5 (50MB left).
    # second then has 50 MB left at 100 MB/s -> done at 2.0.
    assert finish_times["first"] == pytest.approx(1.5)
    assert finish_times["second"] == pytest.approx(2.0)


# -- rate_cap validation (bugfix) ---------------------------------------------

def test_transfer_rejects_zero_rate_cap():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    net.add_node(NetNode("b"))
    with pytest.raises(ValueError):
        net.transfer("a", "b", size=10.0, rate_cap=0.0)


def test_transfer_rejects_negative_rate_cap():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    net.add_node(NetNode("b"))
    with pytest.raises(ValueError):
        net.transfer("a", "b", size=10.0, rate_cap=-5.0)


def test_transfer_accepts_positive_rate_cap():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    net.add_node(NetNode("b"))
    done = net.transfer("a", "b", size=10.0, rate_cap=10.0)
    env.run(until=done)
    assert env.now == pytest.approx(1.0)


# -- remove_node abort coalescing (bugfix) ------------------------------------

def test_remove_node_coalesces_aborts_into_one_pass():
    env = Environment()
    net = make_net(env)
    for i in range(6):
        net.add_node(NetNode(f"src-{i}"))
    net.add_node(NetNode("sink"))
    dones = []
    for i in range(6):
        done = net.transfer(f"src-{i}", "sink", size=1000.0)
        done.defused()  # we expect the aborts; don't crash the run
        dones.append(done)
    env.run(until=0.1)
    before = net.reallocations
    net.remove_node("sink")
    env.run(until=0.2)
    # All six aborts coalesced into exactly one water-filling pass.
    assert net.reallocations == before + 1
    for done in dones:
        assert isinstance(done.value, TransferAborted)
    assert net.active_flow_count() == 0
    assert net.node_load("sink") == (0.0, 0.0)


# -- O(degree) per-node flow counting -----------------------------------------

def test_node_flow_count_tracks_touching_flows():
    env = Environment()
    net = make_net(env)
    for name in ("a", "b", "c"):
        net.add_node(NetNode(name))
    assert net.node_flow_count("a") == 0
    d1 = net.transfer("a", "b", size=100.0)
    d2 = net.transfer("a", "c", size=100.0)
    d3 = net.transfer("c", "a", size=100.0)
    env.run(until=0.01)
    assert net.node_flow_count("a") == 3
    assert net.node_flow_count("b") == 1
    assert net.node_flow_count("c") == 2
    env.run(until=env.all_of([d1, d2, d3]))
    assert net.node_flow_count("a") == 0


def test_node_flow_count_counts_loopback_once():
    env = Environment()
    net = make_net(env)
    net.add_node(NetNode("a"))
    net.transfer("a", "a", size=100.0)
    env.run(until=0.01)
    assert net.node_flow_count("a") == 1


# -- incremental vs full recomputation equivalence ----------------------------

def _run_random_mesh(incremental, scalar_max=None, seed=1234):
    """A churny multi-component scenario; returns exact observables."""
    import random as _random

    from repro.simulation import network as network_module

    rng = _random.Random(seed)
    env = Environment()
    net = make_net(env, latency=0.0005, backbone_capacity=400.0,
                   incremental=incremental)
    if scalar_max is not None:
        old_max = network_module._SCALAR_WATERFILL_MAX
        network_module._SCALAR_WATERFILL_MAX = scalar_max
    try:
        nodes = []
        for i in range(10):
            name = f"n{i}"
            net.add_node(NetNode(name, capacity_out=rng.choice([50.0, 125.0]),
                                 capacity_in=rng.choice([50.0, 125.0]),
                                 site=f"site-{i % 3}"))
            nodes.append(name)
        net.completion_log = []
        dones = []

        def starter(env):
            for _ in range(40):
                src, dst = rng.sample(nodes, 2)
                cap = rng.choice([None, None, 30.0])
                done = net.transfer(src, dst, size=rng.uniform(5.0, 80.0),
                                    rate_cap=cap)
                dones.append(done)
                yield env.timeout(rng.uniform(0.0, 0.3))

        env.process(starter(env))
        env.run(until=env.all_of(dones) if dones else None)
        env.run()
        return (env.now, net.total_delivered, net.reallocations,
                env.events_processed, list(net.completion_log))
    finally:
        if scalar_max is not None:
            network_module._SCALAR_WATERFILL_MAX = old_max


def test_incremental_matches_full_bit_identical():
    # Same seed, both recomputation modes: every completion instant, the
    # pass count, the kernel event count and delivered bytes must match
    # *exactly* (==, not approx) — the optimization is invisible.
    for seed in (7, 99):
        assert _run_random_mesh(True, seed=seed) == _run_random_mesh(False, seed=seed)


def test_scalar_and_vector_waterfill_bit_identical():
    # Force every pass down the scalar path vs. every pass down the
    # numpy path: simulated results must agree bit-for-bit.
    for seed in (3, 42):
        scalar = _run_random_mesh(True, scalar_max=10**9, seed=seed)
        vector = _run_random_mesh(True, scalar_max=0, seed=seed)
        assert scalar == vector
