"""Satellite tests: TransferAborted propagation when a node dies with
multiple in-flight flows, on both the reader and the writer side."""

import pytest

from repro.cluster import Testbed, TestbedConfig
from repro.simulation.network import TransferAborted


def make_testbed(seed=7):
    return Testbed(TestbedConfig(seed=seed))


def watch(env, event):
    """Wait on *event* in a process; record how it ended."""
    outcome = {}

    def runner():
        try:
            outcome["value"] = yield event
        except TransferAborted as exc:
            outcome["aborted"] = exc
        outcome["at"] = env.now

    env.process(runner())
    return outcome


def test_node_death_aborts_all_touching_flows():
    testbed = make_testbed()
    env = testbed.env
    x = testbed.add_node("x")
    a = testbed.add_node("a")
    b = testbed.add_node("b")

    # x is simultaneously a writer (x->a) twice and a reader (b->x);
    # a->b is bystander traffic that must survive x's death.
    outgoing_1 = watch(env, testbed.net.transfer("x", "a", 4000.0))
    outgoing_2 = watch(env, testbed.net.transfer("x", "a", 4000.0))
    incoming = watch(env, testbed.net.transfer("b", "x", 4000.0))
    bystander = watch(env, testbed.net.transfer("a", "b", 200.0))
    env.run(until=0.5)
    assert len(testbed.net.flows) == 4

    x.fail()
    env.run(until=0.6)
    for outcome in (outgoing_1, outgoing_2, incoming):
        assert isinstance(outcome["aborted"], TransferAborted)
        assert outcome["at"] == pytest.approx(0.5)
        assert "node x removed" in outcome["aborted"].reason
    assert "aborted" not in bystander

    env.run(until=60.0)
    assert "value" in bystander  # bystander completed normally


def test_abort_reaches_both_reader_and_writer_waiters():
    """Two processes wait on the same flow (sender + receiver view):
    both observe the abort."""
    testbed = make_testbed()
    env = testbed.env
    x = testbed.add_node("x")
    testbed.add_node("a")

    flow_event = testbed.net.transfer("x", "a", 4000.0)
    writer_side = watch(env, flow_event)
    reader_side = watch(env, flow_event)
    env.run(until=0.2)
    x.fail()
    env.run(until=0.3)
    assert isinstance(writer_side["aborted"], TransferAborted)
    assert isinstance(reader_side["aborted"], TransferAborted)


def test_abort_matching_is_selective():
    testbed = make_testbed()
    env = testbed.env
    testbed.add_node("x")
    testbed.add_node("a")
    testbed.add_node("b")

    doomed = watch(env, testbed.net.transfer("x", "a", 4000.0))
    spared = watch(env, testbed.net.transfer("x", "b", 4000.0))
    env.run(until=0.1)

    count = testbed.net.abort_matching(
        lambda f: f.dst.name == "a", reason="maintenance"
    )
    env.run(until=0.2)
    assert count == 1
    assert doomed["aborted"].reason == "maintenance"
    assert "aborted" not in spared


def test_aborted_flow_frees_bandwidth_for_survivors():
    """After x's flows abort, the survivor reconverges to full rate."""
    testbed = make_testbed()
    env = testbed.env
    x = testbed.add_node("x")
    a = testbed.add_node("a")
    b = testbed.add_node("b")

    # Two flows into a: they share a's ingress capacity.
    watch(env, testbed.net.transfer("x", "a", 4000.0))
    survivor = watch(env, testbed.net.transfer("b", "a", 100.0))
    env.run(until=0.5)
    shared_rate = next(
        f.rate for f in testbed.net.flows if f.src.name == "b"
    )
    x.fail()
    env.run(until=0.6)
    solo_rate = next(
        f.rate for f in testbed.net.flows if f.src.name == "b"
    )
    assert solo_rate > shared_rate * 1.5  # got (roughly) the freed half back

    env.run(until=60.0)
    assert "value" in survivor


def test_late_transfer_to_removed_node_raises_keyerror_by_default():
    testbed = make_testbed()
    env = testbed.env
    x = testbed.add_node("x")
    testbed.add_node("a")
    x.fail()
    with pytest.raises(KeyError):
        testbed.net.transfer("a", "x", 1.0)


def test_late_transfer_to_removed_node_blackholes_when_enabled():
    testbed = make_testbed()
    env = testbed.env
    x = testbed.add_node("x")
    testbed.add_node("a")
    testbed.net.blackhole_missing = True
    x.fail()
    outcome = watch(env, testbed.net.transfer("a", "x", 1.0))
    env.run(until=30.0)
    assert "at" not in outcome  # never delivered, never errored
    assert testbed.net.blackholed_transfers == 1
