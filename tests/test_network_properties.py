"""Property-based tests for the max-min fair bandwidth allocator.

Invariants checked over randomized topologies and flow sets:

1. **Capacity**: no node's aggregate in/out rate exceeds its NIC.
2. **Per-flow cap**: no flow exceeds its rate cap.
3. **Work conservation / max-min**: every flow is bottlenecked somewhere
   (its rate cannot be increased without violating a constraint).
4. **Conservation of bytes**: total delivered equals total injected once
   all flows finish.
5. **Determinism**: same inputs, same completion times.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation import Environment, FlowNetwork, NetNode


def build(env, node_caps):
    net = FlowNetwork(env, latency=0.0)
    for i, (cin, cout) in enumerate(node_caps):
        net.add_node(NetNode(f"n{i}", capacity_out=cout, capacity_in=cin))
    return net


@st.composite
def topologies(draw):
    node_count = draw(st.integers(2, 6))
    caps = [
        (draw(st.sampled_from([50.0, 100.0, 125.0, 200.0])),
         draw(st.sampled_from([50.0, 100.0, 125.0, 200.0])))
        for _ in range(node_count)
    ]
    flow_count = draw(st.integers(1, 12))
    flows = []
    for _ in range(flow_count):
        src = draw(st.integers(0, node_count - 1))
        dst = draw(st.integers(0, node_count - 1).filter(lambda d: d != src))
        size = draw(st.sampled_from([10.0, 64.0, 128.0, 500.0]))
        cap = draw(st.sampled_from([None, None, 5.0, 40.0]))
        flows.append((src, dst, size, cap))
    return caps, flows


@settings(max_examples=60, deadline=None)
@given(topology=topologies())
def test_rates_respect_all_capacities(topology):
    caps, flows = topology
    env = Environment()
    net = build(env, caps)
    for src, dst, size, cap in flows:
        net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
    # Let flows be admitted and rates assigned, then inspect mid-flight.
    env.run(until=0.001)
    active = net.flows
    for i, (cin, cout) in enumerate(caps):
        out_rate, in_rate = net.node_load(f"n{i}")
        assert out_rate <= cout * (1 + 1e-6)
        assert in_rate <= cin * (1 + 1e-6)
    for flow in active:
        if flow.rate_cap is not None:
            assert flow.rate <= flow.rate_cap * (1 + 1e-6)


@settings(max_examples=60, deadline=None)
@given(topology=topologies())
def test_allocation_is_maximal(topology):
    """No flow can be sped up: each has a saturated constraint."""
    caps, flows = topology
    env = Environment()
    net = build(env, caps)
    for src, dst, size, cap in flows:
        net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
    env.run(until=0.001)
    for flow in net.flows:
        saturated = False
        if flow.rate_cap is not None and flow.rate >= flow.rate_cap * (1 - 1e-6):
            saturated = True
        out_rate, _ = net.node_load(flow.src.name)
        if out_rate >= flow.src.capacity_out * (1 - 1e-6):
            saturated = True
        _, in_rate = net.node_load(flow.dst.name)
        if in_rate >= flow.dst.capacity_in * (1 - 1e-6):
            saturated = True
        assert saturated, flow


@settings(max_examples=40, deadline=None)
@given(topology=topologies())
def test_bytes_conserved_at_completion(topology):
    caps, flows = topology
    env = Environment()
    net = build(env, caps)
    events = [
        net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
        for src, dst, size, cap in flows
    ]
    env.run(until=env.all_of(events))
    env.run(until=env.now + 0.01)
    total = sum(size for _s, _d, size, _c in flows)
    assert net.total_delivered == pytest.approx(total, rel=1e-6)
    assert net.active_flow_count() == 0


@settings(max_examples=30, deadline=None)
@given(topology=topologies())
def test_completion_times_deterministic(topology):
    caps, flows = topology

    def run_once():
        env = Environment()
        net = build(env, caps)
        events = [
            net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
            for src, dst, size, cap in flows
        ]
        env.run(until=env.all_of(events))
        return env.now

    assert run_once() == run_once()


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.floats(1.0, 500.0), min_size=1, max_size=10),
    capacity=st.sampled_from([50.0, 125.0]),
)
def test_single_bottleneck_equal_split(sizes, capacity):
    """N flows into one sink: the sink is perfectly shared, and total
    completion time equals total bytes / capacity (work conservation)."""
    env = Environment()
    net = FlowNetwork(env, latency=0.0)
    for i in range(len(sizes)):
        net.add_node(NetNode(f"src{i}", capacity_out=1e6))
    net.add_node(NetNode("sink", capacity_in=capacity))
    events = [
        net.transfer(f"src{i}", "sink", size) for i, size in enumerate(sizes)
    ]
    env.run(until=env.all_of(events))
    assert env.now == pytest.approx(sum(sizes) / capacity, rel=1e-6)


def test_granularity_preserves_totals():
    """Coalesced recomputation may defer rate updates but must not lose
    bytes or change totals materially."""
    def run(granularity):
        env = Environment()
        net = FlowNetwork(env, latency=0.0, recompute_granularity_s=granularity)
        net.add_node(NetNode("a", capacity_out=100.0))
        net.add_node(NetNode("b", capacity_out=100.0))
        net.add_node(NetNode("sink", capacity_in=100.0))
        events = [
            net.transfer("a", "sink", 200.0),
            net.transfer("b", "sink", 200.0),
        ]
        env.run(until=env.all_of(events))
        return env.now

    exact = run(0.0)
    coarse = run(0.05)
    assert coarse == pytest.approx(exact, abs=0.2)
