"""Tests for the adaptation provenance journal + quality scorecard.

Covers the PR-8 contract:

- the :class:`ControlLoop` decision window is bounded (ring semantics)
  while the all-time counter keeps counting;
- the :class:`DecisionJournal` records decisions with evidence, health,
  trace context and lazily-resolved effect attribution, without ever
  perturbing the simulation (journal-on runs are byte-identical to
  journal-off runs across seeds);
- failovers, chaos invariant checks and security sanctions land in the
  same journal;
- the SEAMS quality metrics (settling time, overshoot, SLO-violation
  seconds, oscillations) compute correctly on synthetic signals;
- wall-clock latency metrics are strictly opt-in;
- the exports (timeline JSON, Chrome trace journal tracks) are
  deterministic and well-formed.
"""

import json

import pytest

from repro.adaptation import AdaptationDecision, ControlLoop
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.introspection import (
    AdaptationScorecard,
    DecisionJournal,
    Disturbance,
    SignalSpec,
    adaptation_scorecard,
    journal_tail,
    overshoot,
    settling_time,
    slo_violation_seconds,
)
from repro.introspection.provenance import JournalEntry
from repro.simulation import Environment
from repro.telemetry import MetricsRegistry
from repro.telemetry.export import adaptation_timeline_json, chrome_trace
from repro.workloads import build_disturbance_scenario


def make_deployment(seed=7, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=8.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


class Noisy(ControlLoop):
    """Emits one decision per tick, noting synthetic evidence."""

    name = "noisy"

    def step(self, now):
        self.note(signal=now)
        return [AdaptationDecision(now, self.name, "act", {"tick": now})]


# ------------------------------------------------------------ bounded decisions
def test_decision_window_is_bounded_and_total_keeps_counting():
    dep = make_deployment()
    loop = Noisy(interval_s=1.0, max_decisions=5)
    dep.env.process(loop.run(dep.env))
    dep.run(until=12.5)

    assert loop.decisions_total == 12
    assert len(loop.decisions) == 5
    assert loop.decisions_dropped == 7
    # The retained window is the newest five, still a plain sliceable list.
    assert [d.detail["tick"] for d in loop.decisions] == [8, 9, 10, 11, 12]
    assert loop.decisions[:2][0].detail["tick"] == 8
    # decisions_of keeps working on the retained window.
    assert len(loop.decisions_of("act")) == 5
    assert loop.decisions_of("never") == []


def test_max_decisions_validation():
    with pytest.raises(ValueError):
        Noisy(max_decisions=0)


# ------------------------------------------------------------ journal recording
def test_journal_records_decisions_with_evidence_and_latency():
    dep = make_deployment()
    journal = DecisionJournal(dep.env)
    loop = Noisy(interval_s=1.0).attach_journal(journal)
    dep.env.process(loop.run(dep.env))
    dep.run(until=3.5)

    assert journal.total == 3
    entry = journal.entries[0]
    assert entry.kind == "decision"
    assert entry.engine == "noisy"
    assert entry.action == "act"
    assert entry.evidence == {"signal": 1.0}
    assert entry.latency_s is not None and entry.latency_s >= 0.0
    assert entry.trace_id == 0  # NullTracer: no trace context
    assert journal.counts() == {"noisy.act": 3}
    assert journal.engines() == ["noisy"]
    # The loop's own telemetry mirrors the journal.
    assert loop.last_step_wall_s is not None


def test_journal_ring_capacity_and_dropped():
    env = Environment()
    journal = DecisionJournal(env, capacity=3)
    for i in range(5):
        journal.record_invariant(f"inv-{i}", ok=True, time=float(i))
    assert journal.total == 5
    assert journal.dropped == 2
    assert len(journal) == 3
    assert [e.action for e in journal.entries] == ["inv-2", "inv-3", "inv-4"]
    with pytest.raises(ValueError):
        DecisionJournal(env, capacity=0)


def test_journal_effect_attribution_on_synthetic_series():
    env = Environment()
    metrics = MetricsRegistry(env)
    journal = DecisionJournal(env, metrics=metrics, effect_window_s=10.0)
    journal.watch("eng", ["sig"])

    # Pre-decision window (t in (0, 10]): mean 4.0.
    for t in (2.0, 6.0, 10.0):
        metrics.sample("sig", 4.0, time=t)
    decision = AdaptationDecision(10.0, "eng", "boost", {})
    entry = journal.record_decision(decision, evidence={"w": 1})
    assert entry.effect_at == 20.0
    assert entry.effect["sig"]["before"] == 4.0
    assert entry.effect["sig"]["after"] is None

    # Post-decision window: the signal steps up to 8.0 at t=14.
    metrics.sample("sig", 4.0, time=12.0)
    for t in (14.0, 16.0, 18.0):
        metrics.sample("sig", 8.0, time=t)

    # Window not elapsed yet: resolution is lazy and does nothing.
    assert journal.resolve_effects(now=15.0) == 0
    assert journal.resolve_effects(now=20.0) == 1
    effect = entry.effect["sig"]
    assert effect["after"] == pytest.approx(7.0)  # mean(4, 8, 8, 8)
    assert effect["delta"] == pytest.approx(3.0)
    # Halfway = 4.0 + 1.5 = 5.5; first crossing at t=14 → 4s after t0.
    assert effect["time_to_effect_s"] == pytest.approx(4.0)
    # Re-resolving is idempotent.
    assert journal.resolve_effects(now=30.0) == 0


def test_journal_to_json_is_deterministic():
    def build():
        env = Environment()
        journal = DecisionJournal(env)
        journal.record_decision(
            AdaptationDecision(1.0, "e", "a", {"k": 1}), evidence={"z": 2})
        journal.record_invariant("inv", ok=False, detail={"d": 3}, time=2.0)
        return journal

    a, b = build(), build()
    assert a.to_json() == b.to_json()
    payload = json.loads(a.to_json(indent=2))
    assert payload["total"] == 2
    assert [e["kind"] for e in payload["entries"]] == ["decision",
                                                       "invariant"]
    assert payload["entries"][1]["detail"]["ok"] is False


# ------------------------------------------------------------ robustness feeds
def test_failover_and_chaos_feed_the_journal():
    from repro.robustness import ChaosHarness

    dep = make_deployment(seed=42, vm_replicas=3)
    journal = DecisionJournal(dep.env)
    harness = ChaosHarness(dep, check_every_s=5.0, settle_s=10.0)
    harness.attach_journal(journal)
    # attach_journal auto-wires the VM replication group too.
    assert dep.vm_group.journal is journal

    client = dep.new_client("c1", rpc_timeout_s=4.0)

    def load():
        blob_id = yield from client.create_blob(8.0)
        yield from client.append(blob_id, 8.0)

    dep.env.process(load(), name="load")
    dep.run(until=2.0)
    harness.apply_schedule([
        {"at": 5.0, "kind": "crash", "node": "vm-primary",
         "recover_after": 15.0},
    ])
    harness.run(until=40.0)
    harness.assert_clean()

    failovers = journal.of_kind("failover")
    assert len(failovers) == 1
    assert failovers[0].engine == "vm-replication"
    assert failovers[0].detail["epoch"] == dep.vm_group.failovers[0].epoch
    summaries = [e for e in journal.of_kind("invariant")
                 if e.action == "soak_summary"]
    assert len(summaries) == 1
    assert summaries[0].detail["ok"] is True
    assert summaries[0].detail["violations"] == 0


def test_security_sanctions_feed_the_journal():
    from repro.security.detection import Violation
    from repro.security.policy import dos_flood_policy
    from repro.workloads import build_dos_scenario

    scenario = build_dos_scenario(n_clients=2, malicious_fraction=0.5,
                                  data_providers=4, metadata_providers=2,
                                  monitoring_services=2)
    journal = DecisionJournal(scenario.deployment.env)
    scenario.security.attach_journal(journal)
    violation = Violation(time=12.0, client_id="evil-0",
                          policy=dos_flood_policy(), occurrence=1)
    for listener in scenario.security.engine.listeners:
        listener(violation)

    sanctions = [e for e in journal.entries if e.action == "sanction"]
    assert len(sanctions) == 1
    assert sanctions[0].engine == "security"
    assert sanctions[0].detail["client"] == "evil-0"
    assert sanctions[0].evidence["policy"] == violation.policy.name
    assert 0.0 <= sanctions[0].evidence["trust"] <= 1.0


# ------------------------------------------------------------ quality metrics
BAND = SignalSpec("s", min_value=10.0, hold_s=4.0)


def test_settling_time_requires_the_hold():
    # Dips out of band, re-enters at t=6, holds through t=12.
    pts = [(1.0, 12.0), (2.0, 5.0), (4.0, 5.0), (6.0, 11.0),
           (8.0, 12.0), (10.0, 12.0), (12.0, 12.0)]
    assert settling_time(pts, BAND, 1.5, 12.0) == pytest.approx(4.5)
    # A shorter observation window cannot confirm the hold.
    assert settling_time(pts, BAND, 1.5, 9.0) is None
    # Never re-enters: None.  No data: None.
    assert settling_time([(2.0, 5.0), (5.0, 5.0)], BAND, 0.0, 10.0) is None
    assert settling_time([], BAND, 0.0, 10.0) is None
    # Never left the band after the disturbance: settles immediately.
    calm = [(t, 12.0) for t in range(1, 10)]
    assert settling_time(calm, BAND, 0.5, 9.0) == pytest.approx(0.5)


def test_overshoot_is_fractional_excursion():
    pts = [(1.0, 12.0), (2.0, 5.0), (3.0, 8.0)]
    # Worst excursion: (10 - 5) / 10 = 0.5.
    assert overshoot(pts, BAND, 0.0, 3.0) == pytest.approx(0.5)
    assert overshoot(pts, BAND, 2.5, 3.0) == pytest.approx(0.2)
    upper = SignalSpec("s", max_value=100.0)
    assert overshoot([(1.0, 150.0)], upper, 0.0, 2.0) == pytest.approx(0.5)


def test_slo_violation_seconds_sample_and_hold():
    pts = [(1.0, 12.0), (2.0, 5.0), (4.0, 12.0), (6.0, 5.0)]
    # Out of band over [2, 4) plus the last sample held to t1=9: 2 + 3.
    assert slo_violation_seconds(pts, BAND, 0.0, 9.0) == pytest.approx(5.0)
    assert slo_violation_seconds([], BAND, 0.0, 9.0) == 0.0
    assert slo_violation_seconds(pts, BAND, 0.0, 1.5) == 0.0


def test_oscillation_counting_pairs_antagonists_by_subject():
    def entry(seq, t, action, cache):
        return JournalEntry(seq=seq, time=t, kind="decision",
                            engine="cache-tuner", action=action,
                            detail={"cache": cache})

    entries = [
        entry(1, 0.0, "cache_grow", "a"),
        entry(2, 10.0, "cache_shrink", "a"),    # oscillation (within 60s)
        entry(3, 20.0, "cache_grow", "b"),
        entry(4, 100.0, "cache_shrink", "b"),   # outside the window
        entry(5, 110.0, "cache_shrink", "c"),   # no prior grow: not counted
    ]
    score = AdaptationScorecard(oscillation_window_s=60.0)
    assert score._oscillations(entries) == 1


def test_scorecard_renders_terminal_panels():
    env = Environment()
    metrics = MetricsRegistry(env)
    for t in range(1, 21):
        metrics.sample("sig", 5.0 if 8 <= t <= 12 else 20.0,
                       time=float(t))
    journal = DecisionJournal(env, metrics=metrics)
    journal.record_decision(
        AdaptationDecision(9.0, "eng", "boost", {}), latency_s=0.001)
    score = AdaptationScorecard(
        journal=journal, metrics=metrics,
        signals=[SignalSpec("sig", min_value=10.0, hold_s=2.0,
                            label="signal")],
        disturbances=[Disturbance(8.0, "dip")],
    ).compute(t0=0.0, t1=20.0)

    assert score["signals"]["signal"]["slo_violation_s"] == pytest.approx(5.0)
    dip = score["signals"]["signal"]["disturbances"]["dip"]
    assert dip["settling_s"] == pytest.approx(5.0)
    assert dip["overshoot"] == pytest.approx(0.5)
    assert score["engines"]["eng"]["decisions"] == 1
    assert score["fleet"]["decisions"] == 1

    panel = adaptation_scorecard(score)
    assert "signal" in panel and "eng" in panel and "fleet:" in panel
    tail = journal_tail(journal)
    assert "eng" in tail and "boost" in tail
    assert "(no decisions journaled)" in journal_tail(
        DecisionJournal(env))


# ------------------------------------------------------------ latency metrics
def test_latency_metrics_are_opt_in():
    dep = make_deployment()
    dep.env.metrics = MetricsRegistry(dep.env)
    silent = Noisy(interval_s=1.0)
    loud = Noisy(interval_s=1.0, latency_metrics=True)
    loud.name = "loud"
    dep.env.process(silent.run(dep.env))
    dep.env.process(loud.run(dep.env))
    dep.run(until=3.5)

    metrics = dep.env.metrics
    assert metrics.histogram("adaptation.loud.decision_latency").count == 3
    assert metrics.gauge("adaptation.loud.step_duration_s").value > 0.0
    # The default loop wrote no wall-clock metrics at all.
    names = set(metrics.to_dict())
    assert "adaptation.noisy.decision_latency" not in names
    assert "adaptation.noisy.step_duration_s" not in names


# ------------------------------------------------------------ determinism
@pytest.mark.parametrize("seed", [0, 3])
def test_journal_is_observably_inert_on_disturbance_scenario(seed):
    """Journal-on runs are byte-identical to journal-off runs: same
    completion logs, delivered bytes, event counts and metrics."""
    small = dict(readers=2, dataset_chunks=16, duration=60.0,
                 shift_at=20.0, churn_at=40.0, churn_heal_s=10.0,
                 churn_providers=1, data_providers=6)
    observables = {}
    for with_journal in (False, True):
        scenario = build_disturbance_scenario(
            with_journal=with_journal, seed=seed, **small)
        scenario.run()
        observables[with_journal] = scenario.observables()
    assert observables[False] == observables[True]
    # And the journal-on run actually journaled something.
    scenario = build_disturbance_scenario(with_journal=True, seed=seed,
                                          **small)
    scenario.run()
    assert scenario.journal.total > 0


# ------------------------------------------------------------ exports
def test_timeline_json_and_chrome_trace_journal_tracks():
    from repro import telemetry

    dep = make_deployment()
    tele = telemetry.enable(dep)
    journal = DecisionJournal(dep.env, metrics=tele.metrics,
                              effect_window_s=5.0)
    journal.watch("eng", ["sig"])

    def scenario(env):
        with tele.tracer.span("work", track="node-a"):
            tele.metrics.sample("sig", 1.0)
            yield env.timeout(1.0)
            journal.record_decision(
                AdaptationDecision(env.now, "eng", "boost", {"k": 1}))
        yield env.timeout(2.0)
        tele.metrics.sample("sig", 9.0)  # inside the 5 s effect window

    dep.env.process(scenario(dep.env))
    dep.run(until=15.0)

    # Trace context was captured from the open span.
    entry = journal.entries[0]
    assert entry.trace_id != 0 and entry.span_id != 0

    trace = chrome_trace(tele.tracer, journal=journal)
    events = trace["traceEvents"]
    thread_names = [e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "adaptation:eng" in thread_names
    instants = [e for e in events if e.get("cat") == "adaptation.decision"]
    assert len(instants) == 1
    assert instants[0]["name"] == "boost"
    flows = [e for e in events if e.get("cat") == "adaptation.flow"]
    assert {e["ph"] for e in flows} == {"s", "f"}
    assert all(e["id"] >= 1_000_000_000 for e in flows)
    effects = [e for e in events if e.get("cat") == "adaptation.effect"]
    assert len(effects) == 1

    payload = json.loads(adaptation_timeline_json(journal))
    assert payload["total"] == 1
    assert payload["entries"][0]["action"] == "boost"
    # Embedding a scorecard makes one self-contained record.
    score = AdaptationScorecard(journal=journal, metrics=tele.metrics)
    with_score = json.loads(
        adaptation_timeline_json(journal, score=score.compute(t1=15.0)))
    assert with_score["scorecard"]["fleet"]["decisions"] == 1
