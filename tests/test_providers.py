"""Focused unit tests for data providers and metadata providers."""

import pytest

from repro.blobseer import (
    BlobSeerConfig,
    BlobSeerDeployment,
    BlobSeerError,
    ProviderUnavailable,
    StorageFull,
)
from repro.blobseer.blob import ChunkDescriptor
from repro.blobseer.metadata import LocalKV, MetadataProvider, MetadataStore
from repro.blobseer.provider import DataProvider
from repro.cluster import Testbed, TestbedConfig


def make_pair(disk_mb=1000.0, disk_rate=1e9, seed=55):
    bed = Testbed(TestbedConfig(seed=seed))
    src = bed.add_node("src")
    dst = bed.add_node("dst", disk_mb=disk_mb)
    provider = DataProvider(dst, "p0", disk_rate_mbps=disk_rate)
    return bed, src, provider


def chunk(key="k0", size=64.0):
    return ChunkDescriptor(blob_id=1, storage_key=key, size_mb=size)


def test_ingest_stores_and_accounts():
    bed, src, provider = make_pair()
    descriptor = chunk()
    done = provider.ingest(src, descriptor, client_id="c1")
    bed.run(until=done)
    assert descriptor.storage_key in provider.chunks
    assert provider.node.disk_used_mb == 64.0
    assert provider.chunks_written == 1
    assert provider.bytes_written_mb == 64.0
    assert descriptor.created_at > 0


def test_ingest_rejected_when_disk_full():
    bed, src, provider = make_pair(disk_mb=100.0)

    def scenario(env):
        yield provider.ingest(src, chunk("a", 64.0))
        try:
            yield provider.ingest(src, chunk("b", 64.0))
        except StorageFull:
            return "full"
        return "stored"

    process = bed.env.process(scenario(bed.env))
    assert bed.run(until=process) == "full"


def test_ingest_rejected_when_decommissioned():
    bed, src, provider = make_pair()
    provider.decommission()

    def scenario(env):
        try:
            yield provider.ingest(src, chunk())
        except ProviderUnavailable:
            return "unavailable"
        return "stored"

    process = bed.env.process(scenario(bed.env))
    assert bed.run(until=process) == "unavailable"
    provider.recommission()
    assert provider.available


def test_serve_unknown_chunk_rejected():
    bed, src, provider = make_pair()

    def scenario(env):
        try:
            yield provider.serve(src, chunk("ghost"))
        except BlobSeerError:
            return "missing"
        return "served"

    process = bed.env.process(scenario(bed.env))
    assert bed.run(until=process) == "missing"


def test_disk_queue_serializes_commits():
    """With a slow disk, two simultaneous ingests commit one after the
    other: the second completes roughly one service time later."""
    bed, src, provider = make_pair(disk_rate=64.0)  # 1 s per 64 MB chunk
    times = []

    def one(env, key):
        yield provider.ingest(src, chunk(key))
        times.append(bed.env.now)

    bed.env.process(one(bed.env, "a"))
    bed.env.process(one(bed.env, "b"))
    bed.run(until=30.0)
    assert len(times) == 2
    # Network transfer (~0.5 s shared) + 1 s commit each, serialized.
    assert times[1] - times[0] == pytest.approx(1.0, abs=0.1)


def test_disk_queue_length_reports_backlog():
    bed, src, provider = make_pair(disk_rate=16.0)  # 4 s per chunk
    for i in range(4):
        provider.ingest(src, chunk(f"k{i}"))
    bed.run(until=3.0)  # transfers done (shared NIC ~2 s), commits queued
    assert provider.disk_queue_length >= 3


def test_delete_chunk_frees_space_and_updates_replicas():
    bed, src, provider = make_pair()
    descriptor = chunk()
    descriptor.replicas = ["p0", "p1"]
    done = provider.ingest(src, descriptor)
    bed.run(until=done)
    assert provider.delete_chunk(descriptor.storage_key)
    assert provider.node.disk_used_mb == 0.0
    assert descriptor.replicas == ["p1"]
    assert not provider.delete_chunk(descriptor.storage_key)  # idempotent


def test_node_failure_clears_chunks_and_replicas():
    bed, src, provider = make_pair()
    descriptor = chunk()
    descriptor.replicas = ["p0"]
    done = provider.ingest(src, descriptor)
    bed.run(until=done)
    provider.node.fail()
    assert provider.chunks == {}
    assert descriptor.replicas == []
    assert not provider.available


def test_load_score_rises_under_traffic():
    bed, src, provider = make_pair()
    idle = provider.load_score()
    provider.ingest(src, chunk("big", 500.0))
    bed.run(until=1.0)
    busy = provider.load_score()
    assert busy > idle


# ------------------------------------------------------------------ metadata
def test_local_kv_generator_interface():
    kv = LocalKV()

    def drain(gen):
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    assert drain(kv.put("a", 1)) is None
    assert drain(kv.get("a")) == 1
    assert drain(kv.get("missing")) is None
    assert "a" in kv and len(kv) == 1


def test_metadata_store_routes_deterministically():
    bed = Testbed(TestbedConfig(seed=55))
    nodes = [bed.add_node(f"m{i}") for i in range(3)]
    providers = [MetadataProvider(n, f"meta-{i}") for i, n in enumerate(nodes)]
    client_node = bed.add_node("client")
    store = MetadataStore(bed.net, client_node, providers)

    def scenario(env):
        for i in range(30):
            yield from store.put(f"key-{i}", i)
        values = []
        for i in range(30):
            values.append((yield from store.get(f"key-{i}")))
        return values

    process = bed.env.process(scenario(bed.env))
    assert bed.run(until=process) == list(range(30))
    # Keys sharded across providers, same key -> same provider.
    counts = [len(p.store) for p in providers]
    assert sum(counts) == 30
    assert sum(1 for c in counts if c > 0) >= 2
    assert store._provider_for("key-7") is store._provider_for("key-7")


def test_metadata_store_requires_providers():
    bed = Testbed(TestbedConfig(seed=55))
    client_node = bed.add_node("client")
    with pytest.raises(ValueError):
        MetadataStore(bed.net, client_node, [])


def test_metadata_counters_track_ops():
    bed = Testbed(TestbedConfig(seed=55))
    provider = MetadataProvider(bed.add_node("m0"), "meta-0")
    provider.local_put("k", 1)
    provider.local_get("k")
    provider.local_get("other")
    assert provider.puts == 1
    assert provider.gets == 2
    assert len(provider) == 1
