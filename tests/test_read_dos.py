"""End-to-end test of the read-intensive DoS scenario (§IV-C names both
write- and read-intensive DoS vulnerabilities)."""

import pytest

from repro.blobseer import AccessTable, BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.monitoring import MonitoringConfig, MonitoringStack
from repro.security import (
    PolicyManagement,
    SecurityConfig,
    read_flood_policy,
)
from repro.workloads import CorrectReader, DosReader


def test_read_flood_detected_and_blocked():
    access = AccessTable()
    deployment = BlobSeerDeployment(
        BlobSeerConfig(
            data_providers=10, metadata_providers=2, chunk_size_mb=64.0,
            tree_capacity=1 << 10,
            testbed=TestbedConfig(seed=61, rate_granularity_s=0.01),
        ),
        access=access,
    )
    monitoring = MonitoringStack(deployment.testbed, MonitoringConfig(
        services=2, storage_servers=2, flush_interval_s=1.0,
    ))
    monitoring.attach(deployment)
    security = PolicyManagement(
        deployment, monitoring,
        policies=[read_flood_policy(max_rate_per_s=1.0, window_s=15.0)],
        access_table=access,
        config=SecurityConfig(scan_interval_s=5.0, history_pull_interval_s=2.0),
    )

    env = deployment.env
    writer = deployment.new_client("publisher")
    state = {}

    def publish(env):
        blob_id = yield env.process(writer.create_blob(64.0))
        yield env.process(writer.append(blob_id, 512.0))
        state["blob"] = blob_id

    process = env.process(publish(env))
    deployment.run(until=process)
    blob_id = state["blob"]

    # A legitimate reader (slow) and a read-flood attacker (fast).
    good = CorrectReader(deployment.new_client("good-reader"), blob_id,
                         op_mb=512.0, stop_at=120.0)
    evil = DosReader(deployment.new_client("evil-reader"), blob_id,
                     start_at=10.0, read_mb=64.0, parallel=48)
    env.process(good.run(env))
    env.process(evil.run(env))
    security.start()
    deployment.run(until=120.0)

    assert evil.blocked
    assert not good.denied
    assert good.results  # the legitimate reader kept working
    detected = security.engine.detected_clients()
    assert "evil-reader" in detected
    assert "good-reader" not in detected
    # The violation came from the read policy specifically.
    assert any(v.policy.name == "dos-read-flood" for v in security.violations)


def test_read_flood_policy_ignores_writers():
    from repro.security import UserActivityHistory, UserEvent

    history = UserActivityHistory()
    for i in range(100):
        history.record(UserEvent(
            time=i * 0.1, client_id="writer", kind="op_start", op="append",
        ))
    policy = read_flood_policy(max_rate_per_s=1.0, window_s=10.0)
    assert not policy.evaluate(history, "writer", now=10.0)
