"""Tests for the replicated version manager and warm-standby provider manager.

Covers the PR-7 tentpole: quorum-committed publish log, epoch-fenced
failover, catch-up of rejoining replicas, client-side primary discovery,
and provider-manager warm standby — plus the opt-in guarantee that the
default (``vm_replicas=1``) wiring is untouched.
"""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.blobseer.errors import NotActivePrimary
from repro.cluster import FaultInjector, TestbedConfig
from repro.robustness import PrimaryHandle, ProviderManagerHandle
from repro.robustness.replication import PRIMARY, STANDBY


def make_deployment(seed=11, providers=6, **overrides):
    defaults = dict(
        data_providers=providers,
        metadata_providers=2,
        chunk_size_mb=8.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def make_replicated(seed=11, replicas=3, pm_standby=False, **overrides):
    return make_deployment(
        seed=seed, vm_replicas=replicas, pm_standby=pm_standby, **overrides
    )


def append_loop(dep, client, blob_id, count, period_s=1.0, results=None):
    """Driver generator: *count* appends, recording outcomes."""
    if results is None:
        results = []

    def driver():
        for _ in range(count):
            try:
                result = yield from client.append(blob_id, 8.0)
            except Exception as exc:  # recorded in history; keep going
                results.append((dep.now, False, None, str(exc)))
            else:
                results.append((dep.now, result.ok, result.version, None))
            yield dep.env.timeout(period_s)

    dep.env.process(driver(), name="append-loop")
    return results


# ------------------------------------------------------------------ opt-in
def test_default_deployment_has_no_replication_groups():
    dep = make_deployment()
    assert dep.vm_group is None
    assert dep.pm_group is None
    client = dep.new_client("c1")
    # Clients talk straight to the managers — no handle indirection.
    assert client.vm is dep.vmanager
    assert client.pm is dep.pmanager
    assert not isinstance(client.vm, PrimaryHandle)
    assert not isinstance(client.pm, ProviderManagerHandle)


def test_replicated_deployment_dispenses_handles():
    dep = make_replicated()
    assert dep.vm_group is not None
    assert len(dep.vm_group.replicas) == 3
    assert dep.vm_group.quorum == 2
    client = dep.new_client("c1")
    assert isinstance(client.vm, PrimaryHandle)
    # Boot primary is replica 0 (the base deployment's vm-node).
    boot = dep.vm_group.replicas[0]
    assert boot.role == PRIMARY and boot.epoch == 1
    assert all(r.role == STANDBY for r in dep.vm_group.replicas[1:])


# ------------------------------------------------------------------ mirroring
def test_standbys_mirror_published_history():
    dep = make_replicated()
    client = dep.new_client("c1")

    done = {}

    def driver():
        blob_id = yield from client.create_blob(8.0)
        for _ in range(5):
            yield from client.append(blob_id, 8.0)
        done["blob"] = blob_id

    dep.env.process(driver(), name="driver")
    dep.run(until=30.0)  # a few heartbeat periods for the tail to ship

    blob_id = done["blob"]
    primary = dep.vm_group.active_replica()
    assert primary is not None
    authority = primary.vm.blobs[blob_id]
    assert authority.latest == 5
    for replica in dep.vm_group.replicas:
        assert len(replica.log) == len(primary.log)
        mirror = replica.vm.blobs[blob_id]
        assert mirror.latest == authority.latest
        assert mirror.published_versions() == authority.published_versions()
    # Standbys replay the same log but never serve.
    assert sum(r.serving() for r in dep.vm_group.replicas) == 1


# ------------------------------------------------------------------ failover
def test_primary_crash_failover_loses_no_acked_writes():
    dep = make_replicated(seed=42)
    client = dep.new_client("c1", rpc_timeout_s=4.0)

    state = {}
    results = []

    def driver():
        blob_id = yield from client.create_blob(8.0)
        state["blob"] = blob_id
        for _ in range(25):
            try:
                result = yield from client.append(blob_id, 8.0)
            except Exception as exc:
                results.append((dep.now, False, None, str(exc)))
            else:
                results.append((dep.now, result.ok, result.version, None))
            yield dep.env.timeout(1.0)

    def chaos():
        yield dep.env.timeout(7.0)
        dep.testbed.node("vm-node").fail()

    dep.env.process(driver(), name="driver")
    dep.env.process(chaos(), name="chaos")
    dep.run(until=80.0)

    # Exactly one failover, epoch-fenced above the boot epoch.
    assert len(dep.vm_group.failovers) == 1
    event = dep.vm_group.failovers[0]
    assert event.epoch == 2
    assert event.old_primary == "vm-node"
    assert event.failover_latency_s is not None
    assert event.failover_latency_s >= 0.0
    assert event.outage_s > 0.0

    # The new primary serves and is the only one serving.
    active = dep.vm_group.active_replica()
    assert active is not None and active.name != "vm-node"
    assert sum(r.serving() for r in dep.vm_group.replicas) == 1

    # Zero lost acked writes: every acked version is published at the
    # new primary, and the history is gap-free.
    acked = [v for (_, ok, v, _) in results if ok]
    assert len(acked) >= 15  # the burst kept going through the outage
    info = dep.vm_group.active_vm().blobs[state["blob"]]
    published = set(info.published_versions())
    assert all(v in published for v in acked)
    for version in range(1, info.next_version):
        record = info.versions.get(version)
        assert record is not None, f"version {version} unaccounted"
        assert record.published or record.abandoned


def test_rejoining_replica_catches_up_after_recovery():
    dep = make_replicated(seed=42)
    client = dep.new_client("c1", rpc_timeout_s=4.0)

    state = {}
    append_loop_results = []

    def driver():
        blob_id = yield from client.create_blob(8.0)
        state["blob"] = blob_id
        for _ in range(30):
            try:
                result = yield from client.append(blob_id, 8.0)
            except Exception:
                append_loop_results.append(False)
            else:
                append_loop_results.append(result.ok)
            yield dep.env.timeout(1.0)

    def chaos():
        yield dep.env.timeout(7.0)
        dep.testbed.node("vm-node").fail()
        yield dep.env.timeout(15.0)
        dep.testbed.node("vm-node").recover()

    dep.env.process(driver(), name="driver")
    dep.env.process(chaos(), name="chaos")
    dep.run(until=90.0)

    # The crashed boot primary rejoined as a standby and was re-fed the
    # full log by the new primary's heartbeat shipper.
    rejoined = dep.vm_group.replicas[0]
    assert rejoined.node.alive
    assert rejoined.role == STANDBY and not rejoined.serving()
    active = dep.vm_group.active_replica()
    assert active is not None and active is not rejoined
    assert len(rejoined.log) == len(active.log)
    blob_id = state["blob"]
    assert (
        rejoined.vm.blobs[blob_id].published_versions()
        == active.vm.blobs[blob_id].published_versions()
    )


def test_partitioned_primary_is_epoch_fenced():
    dep = make_replicated(seed=13)
    client = dep.new_client("c1", rpc_timeout_s=4.0)
    injector = FaultInjector(dep.testbed)

    state = {}

    def driver():
        blob_id = yield from client.create_blob(8.0)
        state["blob"] = blob_id
        for _ in range(30):
            try:
                yield from client.append(blob_id, 8.0)
            except Exception:
                pass
            yield dep.env.timeout(1.0)

    def chaos():
        yield dep.env.timeout(6.0)
        # Cut the boot primary off from everyone: it cannot reach quorum,
        # so it must depose itself; the majority side elects epoch 2.
        injector.partition(["vm-node"], heal_after=20.0, label="vm-split")

    dep.env.process(driver(), name="driver")
    dep.env.process(chaos(), name="chaos")
    dep.run(until=90.0)

    old = dep.vm_group.replicas[0]
    active = dep.vm_group.active_replica()
    assert active is not None and active is not old
    assert active.epoch >= 2
    # The old primary deposed (quorum loss or a higher promise) and never
    # acked a write the majority side doesn't have.
    assert not old.serving()
    assert sum(r.serving() for r in dep.vm_group.replicas) == 1
    # After heal the minority side converges onto the new epoch's log.
    assert len(old.log) == len(active.log)
    assert old.last_epoch() == active.last_epoch()


def test_quorum_loss_rejects_writes():
    dep = make_replicated(seed=9)
    client = dep.new_client("c1", rpc_timeout_s=2.0)

    state = {"error": None}

    def driver():
        blob_id = yield from client.create_blob(8.0)
        yield from client.append(blob_id, 8.0)
        # Kill both standbys: no quorum anywhere, so the primary must
        # depose rather than ack unreplicated writes.
        dep.testbed.node("vm-node-1").fail()
        dep.testbed.node("vm-node-2").fail()
        try:
            yield from client.append(blob_id, 8.0)
        except Exception as exc:
            state["error"] = exc

    dep.env.process(driver(), name="driver")
    dep.run(until=120.0)

    assert state["error"] is not None
    assert dep.vm_group.active_replica() is None
    assert all(not r.serving() for r in dep.vm_group.replicas)


# ------------------------------------------------------------------ PM standby
def test_provider_manager_standby_takeover():
    dep = make_replicated(seed=21, pm_standby=True)
    client = dep.new_client("c1", rpc_timeout_s=4.0)
    assert dep.pm_group is not None
    assert dep.pm_group.active_pm() is dep.pmanager
    assert dep.pm_group.standby_pm().standby

    state = {}
    results = []

    def driver():
        blob_id = yield from client.create_blob(8.0)
        state["blob"] = blob_id
        for _ in range(25):
            try:
                result = yield from client.append(blob_id, 8.0)
            except Exception:
                results.append(False)
            else:
                results.append(result.ok)
            yield dep.env.timeout(1.0)

    def chaos():
        yield dep.env.timeout(8.0)
        dep.testbed.node("pm-node").fail()

    dep.env.process(driver(), name="driver")
    dep.env.process(chaos(), name="chaos")
    dep.run(until=90.0)

    # The standby took over and rebuilt the provider pool from
    # re-registrations; allocations kept flowing.
    assert len(dep.pm_group.failovers) == 1
    active = dep.pm_group.active_pm()
    assert active.node.name == "pm-node-standby"
    assert not active.standby
    assert active.pool_size() == len(dep.providers)
    assert sum(results) >= 15


def test_standby_provider_manager_fences_allocations():
    dep = make_replicated(seed=5, pm_standby=True)
    standby = dep.pm_group.standby_pm()
    assert standby.standby
    with pytest.raises(NotActivePrimary):
        standby._fence()


# ------------------------------------------------------------------ determinism
def test_replicated_runs_are_deterministic_per_seed():
    def run_once():
        dep = make_replicated(seed=33)
        client = dep.new_client("c1", rpc_timeout_s=4.0)
        results = []

        def driver():
            blob_id = yield from client.create_blob(8.0)
            for _ in range(10):
                result = yield from client.append(blob_id, 8.0)
                results.append((dep.now, result.version))
                yield dep.env.timeout(1.0)

        def chaos():
            yield dep.env.timeout(5.0)
            dep.testbed.node("vm-node").fail()

        dep.env.process(driver(), name="driver")
        dep.env.process(chaos(), name="chaos")
        dep.run(until=60.0)
        failovers = [
            (e.epoch, e.winner, e.confirmed_at, e.promoted_at)
            for e in dep.vm_group.failovers
        ]
        return results, failovers

    first = run_once()
    second = run_once()
    assert first == second
