"""Tests for the robustness layer: RetryPolicy + heartbeat failure detection."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import FaultInjector, TestbedConfig
from repro.robustness import ALIVE, DEAD, SUSPECTED, HeartbeatFailureDetector, RetryPolicy
from repro.telemetry.metrics import MetricsRegistry


def make_deployment(seed=7, providers=6, **overrides):
    defaults = dict(
        data_providers=providers,
        metadata_providers=2,
        chunk_size_mb=8.0,
        testbed=TestbedConfig(seed=seed),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


# ------------------------------------------------------------------ RetryPolicy
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0.0)


def test_retry_policy_backoff_exponential_and_capped():
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.1, multiplier=2.0,
                         max_delay_s=0.5, jitter=0.0)
    delays = [policy.backoff_s(n) for n in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_retry_policy_jitter_is_bounded_and_deterministic():
    import numpy as np

    def delays(seed):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.2,
                             rng=np.random.default_rng(seed))
        return [policy.backoff_s(1) for _ in range(20)]

    first, second = delays(13), delays(13)
    assert first == second  # same seed -> same jitter sequence
    assert any(d != 0.1 for d in first)  # jitter actually applied
    for delay in first:
        assert 0.08 - 1e-12 <= delay <= 0.12 + 1e-12
    assert delays(14) != first  # different seed -> different sequence


# ------------------------------------------------------------------ detector
def test_detector_state_machine_end_to_end():
    dep = make_deployment()
    metrics = MetricsRegistry(dep.env)
    dep.env.metrics = metrics
    detector = dep.attach_failure_detector(
        period_s=1.0, timeout_s=3.0, confirm_misses=2,
    )
    victim = dep.providers["provider-1"].node
    assert detector.watches(victim.name)
    assert detector.thinks_alive(victim.name)

    dep.run(until=5.0)
    assert detector.view(victim.name).state == ALIVE
    assert detector.pings_sent > 0

    crash_t = dep.now
    victim.fail()
    # First miss -> suspected (excluded from allocation, no repair yet).
    dep.run(until=crash_t + 3.5)
    assert detector.view(victim.name).state == SUSPECTED
    assert not detector.thinks_alive(victim.name)
    assert not detector.confirmed_dead(victim.name)
    # Second miss -> confirmed dead, with positive bounded latency.
    dep.run(until=crash_t + 7.0)
    view = detector.view(victim.name)
    assert view.state == DEAD
    assert detector.confirmed_dead(victim.name)
    latency = detector.detection_latencies[0]
    assert 0.0 < latency <= 3.0 + 2 * 1.0 + 1.0  # timeout + misses*period + phase
    assert metrics.counter("detector.suspicions").value == 1
    assert metrics.counter("detector.confirmations").value == 1
    assert metrics.histogram("detector.detection_latency").count == 1

    # Recovery: the node answers pings again -> back to ALIVE.
    victim.recover()
    dep.run(until=dep.now + 6.0)
    assert detector.view(victim.name).state == ALIVE
    assert detector.thinks_alive(victim.name)
    assert metrics.counter("detector.recoveries").value == 1
    assert detector.stats()["detections"] == 1


def test_detector_confirm_callback_fires_once():
    dep = make_deployment()
    detector = dep.attach_failure_detector(period_s=1.0, timeout_s=2.0)
    confirmed = []
    detector.on_confirm(lambda view: confirmed.append(view.node.name))
    dep.run(until=3.0)
    dep.providers["provider-0"].node.fail()
    dep.run(until=20.0)
    assert confirmed == ["provider-0-node"]


def test_detector_host_crash_freezes_detection():
    dep = make_deployment()
    detector = dep.attach_failure_detector(period_s=1.0, timeout_s=2.0)
    host = dep.actor_nodes["pm"]
    dep.run(until=3.0)

    host.fail()
    victim = dep.providers["provider-2"].node
    victim.fail()
    dep.run(until=20.0)
    # A dead detector host cannot observe anything: no confirmation.
    assert not detector.confirmed_dead(victim.name)
    assert detector.detection_latencies == []

    # Once the host restarts, probing resumes and the crash is found.
    host.recover()
    dep.run(until=dep.now + 10.0)
    assert detector.confirmed_dead(victim.name)
    assert len(detector.detection_latencies) == 1


def test_detector_double_attach_rejected():
    dep = make_deployment()
    dep.attach_failure_detector()
    with pytest.raises(RuntimeError):
        dep.attach_failure_detector()


def test_detector_watch_is_idempotent():
    dep = make_deployment()
    detector = dep.attach_failure_detector()
    node = dep.providers["provider-0"].node
    before = detector.view(node.name)
    assert detector.watch(node) is before
    assert len(detector.views()) == len(dep.providers)


def test_new_provider_is_watched_automatically():
    dep = make_deployment()
    detector = dep.attach_failure_detector()
    provider = dep.add_provider()
    assert detector.watches(provider.node.name)
    assert provider.lazy_failure_cleanup


# ------------------------------------------------------------------ determinism
def _churn_run(seed):
    dep = make_deployment(seed=seed, providers=8)
    detector = dep.attach_failure_detector(period_s=1.0, timeout_s=3.0)
    injector = FaultInjector(dep.testbed)
    nodes = [p.node for p in dep.providers.values()]
    injector.poisson_crashes(nodes, rate_per_second=0.05, stop_at=60.0,
                             recover_after=25.0, max_crashes=4)
    dep.run(until=100.0)
    return (
        [(e.time, e.node, e.kind) for e in injector.log],
        list(detector.detection_latencies),
    )


def test_fault_schedule_and_detection_are_seed_stable():
    log_a, lat_a = _churn_run(seed=21)
    log_b, lat_b = _churn_run(seed=21)
    assert log_a == log_b
    assert lat_a == lat_b
    assert len(log_a) > 0 and len(lat_a) > 0

    log_c, _lat_c = _churn_run(seed=22)
    assert log_c != log_a  # different seed -> different schedule


# ------------------------------------------------------------------ flapping
def test_flapping_provider_never_triggers_repair():
    """alive -> suspected -> alive oscillation must not start repairs.

    A short network glitch raises suspicion (one missed ping) but heals
    before ``confirm_misses`` lands; the ReplicationManager gates repair
    on *confirmed* deaths, so a flapping provider costs zero repair
    traffic — and the detector's latency stats stay finite (no
    confirmation, no latency sample).
    """
    import math

    from repro.adaptation import ReplicationManager

    dep = make_deployment(replication=2)
    metrics = MetricsRegistry(dep.env)
    dep.env.metrics = metrics
    detector = dep.attach_failure_detector(
        period_s=1.0, timeout_s=3.0, confirm_misses=3,
    )
    client = dep.new_client("c1")

    def setup():
        blob_id = yield from client.create_blob(8.0)
        yield from client.append(blob_id, 32.0)

    process = dep.env.process(setup())
    dep.run(until=process)

    manager = ReplicationManager(dep, target_replication=2, interval_s=2.0,
                                 detector=detector)
    dep.env.process(manager.run(dep.env))

    victim = next(p for p in dep.providers.values() if p.chunks)
    injector = FaultInjector(dep.testbed)
    # Two 4-second glitches: pings sent into the cut miss after their
    # 3s timeout (-> suspected), but the first post-heal pong lands
    # before the third miss, so the view snaps back to alive.
    for _ in range(2):
        injector.partition([victim.node], heal_after=4.0)
        dep.run(until=dep.now + 15.0)

    name = victim.node.name
    assert metrics.counter("detector.suspicions").value >= 2  # it flapped
    assert metrics.counter("detector.confirmations").value == 0
    assert detector.thinks_alive(name)
    assert not detector.confirmed_dead(name)
    # No confirmation -> no repair, no repair traffic.
    assert manager.repairs_done == 0
    assert manager.repair_traffic_mb == 0.0
    stats = detector.stats()
    assert stats["dead"] == 0 and stats["detections"] == 0
    for key in ("mean_detection_latency_s", "max_detection_latency_s"):
        assert stats[key] is None or math.isfinite(stats[key])
