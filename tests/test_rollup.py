"""Materialized rollups: exact sliding aggregates, advisor, transparency.

The contract under test is strong: a query answered from a materialized
rollup must be *bitwise identical* to the raw scan for every
non-percentile statistic, at arbitrary query times, so rollups (and the
advisor that manages them) are observably read-only — enabling them in
a simulation changes no simulated observable.
"""

import math
import random

import pytest

from repro.blobseer.instrument import EV_CHUNK_READ, EV_CHUNK_WRITE, MonitoringEvent
from repro.cluster import Testbed
from repro.introspection import ExactSum, QueryEngine, RollupAdvisor, RollupStore
from repro.introspection.rollup import SeriesRollup, shape_label
from repro.monitoring import StorageRepository, StorageServer
from repro.telemetry.metrics import MetricsRegistry
from repro.workloads import build_hotspot_scenario

STATS_EXACT = ["count", "sum", "min", "max", "mean", "latest", "rate",
               "value_rate"]


def fill(registry, name, n, seed, dt=1.0):
    rng = random.Random(seed)
    for i in range(n):
        registry.sample(name, rng.uniform(-50.0, 50.0), time=i * dt)


def ev(t, actor_id="provider-0", etype=EV_CHUNK_WRITE, blob=1, chunk=None,
       size=0.0, count=1):
    fields = {"count": count, "size_mb": size}
    if chunk is not None:
        fields["chunk"] = chunk
    return MonitoringEvent(
        time=t, actor_type="provider", actor_id=actor_id, event_type=etype,
        client_id="c", blob_id=blob, fields=fields,
    )


def make_repo(n=2, rate=1e9):
    bed = Testbed()
    servers = [
        StorageServer(bed.add_node(f"s{i}"), f"s{i}", write_rate_eps=rate)
        for i in range(n)
    ]
    return bed, StorageRepository(servers)


# ------------------------------------------------------------------ ExactSum
def test_exact_sum_matches_fsum_bitwise():
    rng = random.Random(13)
    values = [rng.uniform(-1e6, 1e6) * 10 ** rng.randint(-8, 8)
              for _ in range(500)]
    acc = ExactSum()
    for v in values:
        acc.add(v)
    assert acc.value() == math.fsum(values)


def test_exact_sum_remove_is_exact():
    # The killer case for naive running sums: catastrophic cancellation.
    acc = ExactSum()
    for v in (1e16, 1.0, -1e16):
        acc.add(v)
    assert acc.value() == 1.0  # float((1e16 + 1.0) - 1e16) would be 0.0

    rng = random.Random(7)
    values = [rng.uniform(-1e9, 1e9) for _ in range(1000)]
    for v in values:
        acc.add(v)
    # Evict the first 600 in order; the survivors must sum exactly.
    for v in values[:600]:
        acc.remove(v)
    assert acc.value() == math.fsum([1e16, 1.0, -1e16] + values[600:])
    # The expansion stays compact (non-overlapping doubles), not O(n).
    assert len(acc) < 64


# ------------------------------------------------------------ series rollups
@pytest.mark.parametrize("seed", [1, 42])
def test_rollup_answers_bitwise_match_raw_scans(seed):
    raw_reg, roll_reg = MetricsRegistry(), MetricsRegistry()
    raw = QueryEngine(metrics=raw_reg, window_s=40.0)
    rolled = QueryEngine(metrics=roll_reg, window_s=40.0, rollups=True)
    rolled.materialize("lat", 40.0)  # materialize-then-stream
    fill(raw_reg, "lat", 500, seed)
    fill(roll_reg, "lat", 500, seed)

    # Query times at/after the stream head, strictly increasing: the
    # streamed rollup's window already slid to the newest sample (499),
    # and it cannot rewind behind a slide it applied (historical queries
    # fall back to raw scans; see the fallback test below).
    for now in (499.0, 499.25, 505.5, 512.0, 527.75, 538.5):
        for stat in STATS_EXACT:
            want = raw.window_stat("lat", stat, now=now)
            got = rolled.window_stat("lat", stat, now=now)
            assert got == want, f"now={now} stat={stat}: {got!r} != {want!r}"

    shape = ("series", "lat", 40.0)
    assert rolled.query_stats[shape].rollup_hits == 6 * len(STATS_EXACT)
    assert rolled.query_stats[shape].raw_scans == 0


def test_backfilled_rollup_matches_streamed_rollup():
    # materialize() after the fact == materialize-then-stream: both are
    # bitwise equal to the raw scan, hence to each other.
    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    a = QueryEngine(metrics=reg_a, window_s=25.0, rollups=True)
    b = QueryEngine(metrics=reg_b, window_s=25.0, rollups=True)
    b.materialize("x", 25.0)
    fill(reg_a, "x", 300, seed=5)
    fill(reg_b, "x", 300, seed=5)
    a.materialize("x", 25.0)  # backfill path
    for stat in STATS_EXACT + ["p50", "p95", "p99"]:
        assert (a.window_stat("x", stat, now=299.0)
                == b.window_stat("x", stat, now=299.0))


@pytest.mark.parametrize("seed", [3, 17])
def test_rollup_percentiles_track_raw_within_tolerance(seed):
    raw_reg, roll_reg = MetricsRegistry(), MetricsRegistry()
    fill(raw_reg, "lat", 2000, seed)
    fill(roll_reg, "lat", 2000, seed)
    raw = QueryEngine(metrics=raw_reg, window_s=1000.0)
    rolled = QueryEngine(metrics=roll_reg, window_s=1000.0, rollups=True)
    rolled.materialize("lat", 1000.0)

    spread = 100.0  # uniform(-50, 50)
    for q in (50, 90, 95, 99):
        want = raw.window_stat("lat", f"p{q}", now=1999.0)
        got = rolled.window_stat("lat", f"p{q}", now=1999.0)
        # Reservoir approximation: right ballpark, not bitwise.
        assert abs(got - want) < 0.25 * spread

    # Seeded reservoirs: an identical rerun gives identical percentiles.
    reg2 = MetricsRegistry()
    fill(reg2, "lat", 2000, seed)
    rolled2 = QueryEngine(metrics=reg2, window_s=1000.0, rollups=True)
    rolled2.materialize("lat", 1000.0)
    for q in (50, 95, 99):
        assert (rolled2.window_stat("lat", f"p{q}", now=1999.0)
                == rolled.window_stat("lat", f"p{q}", now=1999.0))


def test_rollup_falls_back_when_it_cannot_answer():
    registry = MetricsRegistry()
    engine = QueryEngine(metrics=registry, window_s=10.0, rollups=True)
    fill(registry, "x", 100, seed=9)
    engine.materialize("x", 10.0)
    shape = ("series", "x", 10.0)

    assert engine.window_stat("x", "mean", now=99.0) is not None
    assert engine.query_stats[shape].rollup_hits == 1

    # Historical query behind the applied window slide: raw fallback,
    # same answer as a fresh raw engine.
    hist = engine.window_stat("x", "mean", now=50.0)
    assert engine.query_stats[shape].raw_scans == 1
    raw_engine = QueryEngine(metrics=registry, window_s=10.0)
    assert hist == raw_engine.window_stat("x", "mean", now=50.0)

    # Unmatched window tier and unmaterialized series: raw fallbacks.
    engine.window_stat("x", "mean", window_s=25.0, now=99.5)
    assert engine.query_stats[("series", "x", 25.0)].raw_scans == 1
    engine.window_stat("y", "mean", now=99.5)
    assert ("series", "y", 10.0) not in engine.rollups._by_name


def test_rollup_counters_and_store_accounting():
    registry = MetricsRegistry()
    engine = QueryEngine(metrics=registry, window_s=20.0, rollups=True)
    fill(registry, "a", 50, seed=2)
    fill(registry, "b", 50, seed=3)
    engine.materialize("a", 20.0)

    engine.window_stat("a", "mean", now=49.0)   # hit
    engine.window_stat("b", "mean", now=49.0)   # raw scan
    engine.window_stat("b", "sum", now=49.0)    # memoized -> no new scan
    assert registry.counter("introspection.query.rollup_hits").value == 1
    assert registry.counter("introspection.query.raw_scans").value == 1

    store = engine.rollups
    assert store.shapes() == [("series", "a", 20.0)]
    assert shape_label(store.shapes()[0]) == "series:a@20s"
    assert store.bytes_used() > 0
    assert store.samples_routed == 0  # listener fed only post-materialize
    registry.sample("a", 1.0, time=50.0)
    assert store.samples_routed == 1

    assert store.retire(("series", "a", 20.0)) is True
    assert store.retire(("series", "a", 20.0)) is False
    assert store.shapes() == []
    assert (store.created, store.retired) == (1, 1)


# ------------------------------------------------------------------ the memo
def test_window_queries_are_memoized_within_a_step():
    registry = MetricsRegistry()
    fill(registry, "x", 200, seed=4)
    engine = QueryEngine(metrics=registry, window_s=50.0)
    shape = ("series", "x", 50.0)

    for stat in STATS_EXACT + ["p50", "p95"]:
        engine.window_stat("x", stat, now=150.0)
    # One raw slice served all ten statistics.
    assert engine.query_stats[shape].raw_scans == 1
    assert engine.query_stats[shape].scanned_points == 50

    # Time moving on invalidates the memo...
    engine.window_stat("x", "mean", now=151.0)
    assert engine.query_stats[shape].raw_scans == 2
    # ...and so does a new sample landing at the same instant.
    registry.sample("x", 7.0, time=151.0)
    assert engine.window_stat("x", "max", now=151.0) >= 7.0
    assert engine.query_stats[shape].raw_scans == 3


def test_sample_listener_add_remove():
    registry = MetricsRegistry()
    seen = []
    listener = lambda name, t, v: seen.append((name, t, v))
    registry.add_sample_listener(listener)
    registry.add_sample_listener(listener)  # dedup
    registry.sample("s", 1.0, time=0.5)
    assert seen == [("s", 0.5, 1.0)]
    registry.remove_sample_listener(listener)
    registry.sample("s", 2.0, time=1.0)
    assert len(seen) == 1


# ------------------------------------------------------------- event rollups
def test_event_rollups_match_raw_event_scans():
    bed, repo = make_repo(n=2)
    sites = {"provider-0": "rack-A", "provider-1": "rack-A",
             "provider-2": "rack-B"}
    raw = QueryEngine(repository=repo, env=bed.env, window_s=60.0,
                      site_of=sites)
    rolled = QueryEngine(repository=repo, env=bed.env, window_s=60.0,
                         site_of=sites, rollups=True)
    rolled.materialize_events("provider", 60.0)
    rolled.materialize_events("site", 60.0)

    repo.store([
        ev(10.0, "provider-0", EV_CHUNK_WRITE, blob=1, chunk="b1:0", size=32.0),
        ev(11.0, "provider-0", EV_CHUNK_READ, blob=1, chunk="b1:0", size=32.0),
        ev(12.0, "provider-1", EV_CHUNK_WRITE, blob=2, chunk="b2:0", size=64.0),
        ev(13.0, "provider-2", EV_CHUNK_READ, blob=1, chunk="b1:0", size=32.0),
        ev(14.0, "provider-2", EV_CHUNK_READ, blob=1, chunk="b1:1", size=32.0),
    ])
    bed.run(until=1.0)

    want = raw.provider_rollup(now=20.0)
    got = rolled.provider_rollup(now=20.0)
    assert set(got) == set(want)
    for key in want:
        for field in ("chunk_reads", "chunk_writes", "mb_read",
                      "mb_written", "events", "actors"):
            assert getattr(got[key], field) == getattr(want[key], field)
    assert rolled.query_stats[("events", "provider", 60.0)].rollup_hits == 1

    by_site = rolled.site_rollup(now=20.0)
    want_site = raw.site_rollup(now=20.0)
    assert {k: r.mb_read for k, r in by_site.items()} == \
        {k: r.mb_read for k, r in want_site.items()}

    # Incremental: events stored after materialization flow in too.
    repo.store([ev(30.0, "provider-1", EV_CHUNK_READ, chunk="b2:1",
                   size=16.0)])
    bed.run(until=2.0)
    assert rolled.provider_rollup(now=40.0)["provider-1"].chunk_reads == 1
    assert raw.provider_rollup(now=40.0)["provider-1"].chunk_reads == 1


# ----------------------------------------------------------------- advisor
def advisor_rig(window_s=10.0, **kwargs):
    registry = MetricsRegistry()
    engine = QueryEngine(metrics=registry, window_s=window_s)
    advisor = RollupAdvisor(engine, interval_s=5.0, **kwargs)
    return registry, engine, advisor


def test_advisor_materializes_hot_shapes():
    registry, engine, advisor = advisor_rig(min_scans=2,
                                            min_points_per_scan=8.0)
    fill(registry, "hot", 100, seed=6)
    fill(registry, "cold", 100, seed=8)
    for i in range(5):
        engine.window_stat("hot", "mean", now=99.0 + i)
    engine.window_stat("cold", "mean", now=104.0)  # one scan: not hot

    decisions = advisor.step(now=105.0)
    assert [d.action for d in decisions] == ["rollup_create"]
    assert decisions[0].detail["shape"] == "series:hot@10s"
    store = engine.rollups
    assert store.series_rollup("hot", 10.0) is not None
    assert store.series_rollup("cold", 10.0) is None

    # Post-creation queries hit the rollup, and the next step does not
    # re-create it.
    engine.window_stat("hot", "mean", now=106.0)
    assert engine.query_stats[("series", "hot", 10.0)].rollup_hits == 1
    assert advisor.step(now=110.0) == []
    assert registry.gauge("introspection.query.rollup_bytes").value > 0


def test_advisor_retires_cold_rollups():
    registry, engine, advisor = advisor_rig(min_scans=1,
                                            min_points_per_scan=1.0,
                                            retire_after_s=20.0)
    fill(registry, "x", 50, seed=1)
    for i in range(3):
        engine.window_stat("x", "mean", now=49.0 + i)
    assert [d.action for d in advisor.step(now=52.0)] == ["rollup_create"]

    # Still inside the grace period: kept even with no hits.
    assert advisor.step(now=60.0) == []
    assert engine.rollups.shapes() != []
    # Cold past the grace period: retired.
    retired = advisor.step(now=100.0)
    assert [d.action for d in retired] == ["rollup_retire"]
    assert engine.rollups.shapes() == []


def test_advisor_respects_byte_budget():
    registry, engine, advisor = advisor_rig(min_scans=1,
                                            min_points_per_scan=1.0,
                                            budget_bytes=1)
    fill(registry, "x", 50, seed=1)
    engine.window_stat("x", "mean", now=49.0)
    assert advisor.step(now=50.0) == []
    assert advisor.budget_rejects == 1
    assert engine.rollups.shapes() == []
    assert registry.counter("introspection.advisor.budget_rejects").value == 1


def test_advisor_dry_run_only_suggests():
    registry = MetricsRegistry()
    engine = QueryEngine(metrics=registry, window_s=10.0)
    advisor = RollupAdvisor(engine, interval_s=5.0, dry_run=True,
                            min_scans=1, min_points_per_scan=1.0)
    fill(registry, "x", 50, seed=1)
    engine.window_stat("x", "mean", now=49.0)
    decisions = advisor.step(now=50.0)
    assert [d.action for d in decisions] == ["rollup_suggest"]
    assert advisor.suggestions[0]["shape"] == "series:x@10s"
    assert engine.rollups is None  # never attached a store


def _hotspot_observables(with_advisor):
    scenario = build_hotspot_scenario(
        readers=4, dataset_chunks=16, chunk_size_mb=4.0,
        reads_per_client=25, data_providers=6, with_caches=True,
        with_tuner=True, tuner_interval_s=4.0, seed=11,
    )
    for reader in scenario.readers:
        reader.think_s = 1.5  # stretch the run so control loops step
    if with_advisor:
        advisor = RollupAdvisor(scenario.tuner.query, interval_s=6.0,
                                min_scans=1, min_points_per_scan=1.0)
        scenario.deployment.env.process(
            advisor.run(scenario.deployment.env), name="rollup-advisor")
    scenario.run()
    store = scenario.tuner.query.rollups
    return {
        "read_end": scenario.read_end,
        "per_reader_mb": [r.total_read_mb() for r in scenario.readers],
        "caches": scenario.cache_report(),
        "tuner_actions": [(d.time, d.action, d.detail)
                          for d in scenario.tuner.decisions],
    }, store


def test_advisor_is_observably_read_only():
    """The determinism contract: enabling the advisor (which swaps hot
    tuner queries from raw scans to rollups mid-run) changes nothing the
    simulation can observe — because rollup answers are bitwise exact.
    """
    baseline, _ = _hotspot_observables(with_advisor=False)
    advised, store = _hotspot_observables(with_advisor=True)
    assert store is not None and store.created > 0  # it really kicked in
    assert advised == baseline


# ------------------------------------------------------------- elasticity
def test_elasticity_controller_publishes_and_smooths_with_query():
    from repro.adaptation.elasticity import ElasticityController
    from repro.blobseer import BlobSeerConfig, BlobSeerDeployment

    deployment = BlobSeerDeployment(BlobSeerConfig(
        data_providers=3, metadata_providers=1))
    env = deployment.env
    registry = MetricsRegistry(env)
    engine = QueryEngine(metrics=registry, env=env, window_s=30.0)
    controller = ElasticityController(deployment, query=engine,
                                      interval_s=5.0)
    assert controller.smooth_window_s == 15.0

    raw_load = controller.pool_load()
    # A synthetic earlier reading drags the windowed mean away from the
    # instantaneous value — proof the controller acts on the smoothed
    # signal.
    registry.sample("elasticity.pool_load", raw_load + 1.0, time=0.0)
    controller.step(env.now)
    assert len(registry.series("elasticity.pool_load")) == 2
    assert len(registry.series("elasticity.pool_fill")) == 1
    assert len(registry.series("elasticity.pool_size")) == 1
    _now, _pool, used_load = controller.pool_timeline[0]
    assert used_load == pytest.approx(raw_load + 0.5)

    # Without a query engine nothing is published and raw signals rule.
    bare = ElasticityController(BlobSeerDeployment(BlobSeerConfig(
        data_providers=3, metadata_providers=1)))
    bare.step(0.0)
    assert bare.pool_timeline[0][2] == pytest.approx(bare.pool_load())
