"""Tests for RPC timeouts and retries (robustness layer plumbing)."""

import pytest

from repro import telemetry
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment, RpcTimeout
from repro.blobseer.rpc import (
    TIMED_OUT,
    request_response,
    wait_or_timeout,
    with_retries,
)
from repro.cluster import Testbed, TestbedConfig
from repro.robustness import RetryPolicy
from repro.telemetry.metrics import MetricsRegistry


def make_testbed(seed=7, blackhole=True):
    testbed = Testbed(TestbedConfig(seed=seed))
    testbed.net.blackhole_missing = blackhole
    return testbed


def drive(env, gen):
    """Run generator *gen* as a process, capturing result or exception."""
    outcome = {}

    def runner():
        try:
            outcome["value"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - test harness
            outcome["error"] = exc
        outcome["at"] = env.now

    env.process(runner())
    return outcome


# ------------------------------------------------------------------ primitives
def test_wait_or_timeout_value_wins():
    testbed = make_testbed()
    env = testbed.env

    def scenario():
        value = yield from wait_or_timeout(env, env.timeout(1.0, value=42), 5.0)
        return value

    outcome = drive(env, scenario())
    env.run(until=10.0)
    assert outcome["value"] == 42
    assert outcome["at"] == pytest.approx(1.0)


def test_wait_or_timeout_deadline_wins():
    testbed = make_testbed()
    env = testbed.env

    def scenario():
        value = yield from wait_or_timeout(env, env.timeout(60.0), 2.0)
        return value

    outcome = drive(env, scenario())
    env.run(until=10.0)
    assert outcome["value"] is TIMED_OUT
    assert outcome["at"] == pytest.approx(2.0)


def test_wait_or_timeout_nonpositive_is_immediate():
    testbed = make_testbed()
    env = testbed.env

    def scenario():
        value = yield from wait_or_timeout(env, env.timeout(1.0), 0.0)
        return value

    outcome = drive(env, scenario())
    env.run(until=1.0)
    assert outcome["value"] is TIMED_OUT


# ------------------------------------------------------------------ rpc paths
def test_rpc_without_timeout_is_legacy_path():
    testbed = make_testbed()
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    outcome = drive(testbed.env, request_response(testbed.net, a.netnode, b.netnode))
    testbed.env.run(until=5.0)
    assert "error" not in outcome


def test_rpc_times_out_against_blackholed_node():
    testbed = make_testbed()
    env = testbed.env
    metrics = MetricsRegistry(env)
    env.metrics = metrics
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()  # removed from the network; blackhole mode swallows sends

    outcome = drive(env, request_response(
        testbed.net, "a", "b", op="probe", timeout_s=2.0,
    ))
    env.run(until=10.0)
    error = outcome["error"]
    assert isinstance(error, RpcTimeout)
    assert error.op == "probe"
    assert error.callee == "b"
    assert outcome["at"] == pytest.approx(2.0)  # gave up right at the deadline
    assert metrics.counter("rpc.timeouts").value == 1


def test_rpc_keyerror_without_blackhole_is_retryable():
    testbed = make_testbed(blackhole=False)
    env = testbed.env
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    retry = RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0)
    outcome = drive(env, request_response(
        testbed.net, "a", "b", timeout_s=1.0, retry=retry,
    ))
    env.run(until=5.0)
    # Both attempts hit the missing node; the KeyError surfaces after
    # the policy is exhausted.
    assert isinstance(outcome["error"], KeyError)


def test_rpc_retry_succeeds_after_recovery():
    testbed = make_testbed()
    env = testbed.env
    metrics = MetricsRegistry(env)
    env.metrics = metrics
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    def resurrect():
        yield env.timeout(3.5)
        b.recover()

    env.process(resurrect())
    retry = RetryPolicy(max_attempts=5, base_delay_s=1.0, multiplier=1.0,
                        jitter=0.0)
    outcome = drive(env, request_response(
        testbed.net, "a", "b", op="hello", timeout_s=2.0, retry=retry,
    ))
    env.run(until=30.0)
    # Attempts at t=0 (timeout 2), t=3 (timeout 5); b is back at 3.5...
    assert "error" not in outcome
    assert metrics.counter("rpc.timeouts").value >= 1
    assert metrics.counter("rpc.retries").value >= 1


def test_retry_deadline_caps_attempts():
    testbed = make_testbed()
    env = testbed.env
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    retry = RetryPolicy(max_attempts=100, base_delay_s=1.0, multiplier=1.0,
                        jitter=0.0, deadline_s=5.0)
    outcome = drive(env, request_response(
        testbed.net, "a", "b", timeout_s=1.0, retry=retry,
    ))
    env.run(until=60.0)
    assert isinstance(outcome["error"], RpcTimeout)
    # Attempts stop once the overall deadline passes, far before 100 tries.
    assert outcome["at"] <= 8.0


def test_with_retries_passthrough_without_policy():
    testbed = make_testbed()
    env = testbed.env

    calls = []

    def attempt():
        calls.append(1)
        raise RpcTimeout("op", "x", 1.0)
        yield  # pragma: no cover - makes this a generator

    outcome = drive(env, with_retries(env, attempt, retry=None))
    env.run(until=1.0)
    assert isinstance(outcome["error"], RpcTimeout)
    assert len(calls) == 1


# ------------------------------------------------------------------ version manager
def make_deployment(**overrides):
    defaults = dict(
        data_providers=4,
        metadata_providers=2,
        chunk_size_mb=8.0,
        testbed=TestbedConfig(seed=11),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def test_ticket_timeout_releases_queue_slot():
    """A holds the blob lock; B times out queued; C must still get through."""
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    client = dep.new_client("setup")
    blob_holder = {}

    def setup():
        blob_holder["id"] = yield env.process(client.create_blob(8.0))

    process = env.process(setup())
    dep.run(until=process)
    blob_id = blob_holder["id"]

    node_a = dep.testbed.add_node("caller-a")
    node_b = dep.testbed.add_node("caller-b")
    node_c = dep.testbed.add_node("caller-c")

    a_out = drive(env, vm.remote_ticket(node_a, blob_id, 8.0, "A"))
    dep.run(until=env.now + 1.0)
    ticket_a = a_out["value"]
    assert ticket_a is not None

    # B queues behind A with a 2 s budget -> RpcTimeout, slot withdrawn.
    b_out = drive(env, vm.remote_ticket(node_b, blob_id, 8.0, "B", timeout_s=2.0))
    dep.run(until=env.now + 5.0)
    assert isinstance(b_out["error"], RpcTimeout)

    # A abandons its ticket -> the lock frees -> C acquires promptly.
    vm.abandon(ticket_a)
    c_out = drive(env, vm.remote_ticket(node_c, blob_id, 8.0, "C", timeout_s=5.0))
    dep.run(until=env.now + 5.0)
    ticket_c = c_out["value"]
    assert ticket_c is not None
    # B's timed-out request did not consume the lock: C's ticket follows
    # A's directly.
    assert ticket_c.version == ticket_a.version + 1
    vm.abandon(ticket_c)


def test_get_latest_with_timeout_matches_legacy_result():
    dep = make_deployment()
    env = dep.env
    client = dep.new_client("w")
    blob_holder = {}

    def setup():
        blob_id = yield env.process(client.create_blob(8.0))
        yield env.process(client.append(blob_id, 16.0))
        blob_holder["id"] = blob_id

    process = env.process(setup())
    dep.run(until=process)

    caller = dep.testbed.add_node("reader")
    legacy = drive(env, dep.vmanager.remote_get_latest(caller, blob_holder["id"]))
    robust = drive(env, dep.vmanager.remote_get_latest(
        caller, blob_holder["id"], timeout_s=10.0,
    ))
    dep.run(until=env.now + 5.0)
    assert legacy["value"] == robust["value"]
    assert legacy["value"][1] == 16.0  # size reflects the append


# ------------------------------------------------------------------ span hygiene
def test_timed_out_rpc_closes_single_error_span():
    """A timed-out RPC leaves exactly one span, closed with the error."""
    testbed = make_testbed()
    env = testbed.env
    tele = telemetry.enable(testbed, profile=False)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    outcome = drive(env, request_response(
        testbed.net, "a", "b", op="probe", timeout_s=2.0,
    ))
    env.run(until=10.0)
    assert isinstance(outcome["error"], RpcTimeout)

    probes = tele.tracer.spans_named("probe")
    assert len(probes) == 1
    span = probes[0]
    assert span.finished
    assert "RpcTimeout" in span.attrs["error"]
    assert span.duration_s == pytest.approx(2.0)
    assert tele.tracer.open_spans() == []


def test_retried_rpc_does_not_duplicate_spans():
    """One op span covers all retry attempts — retries must not fork spans."""
    testbed = make_testbed()
    env = testbed.env
    tele = telemetry.enable(testbed, profile=False)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    def resurrect():
        yield env.timeout(3.5)
        b.recover()

    env.process(resurrect())
    retry = RetryPolicy(max_attempts=5, base_delay_s=1.0, multiplier=1.0,
                        jitter=0.0)
    outcome = drive(env, request_response(
        testbed.net, "a", "b", op="hello", timeout_s=2.0, retry=retry,
    ))
    env.run(until=30.0)
    assert "error" not in outcome

    hellos = tele.tracer.spans_named("hello")
    assert len(hellos) == 1  # two attempts, one logical span
    span = hellos[0]
    assert span.finished
    assert "error" not in span.attrs  # the op eventually succeeded
    # The span brackets both attempts: start at t=0, end after recovery.
    assert span.start == pytest.approx(0.0)
    assert span.end > 3.5
    assert tele.tracer.open_spans() == []


def test_exhausted_retries_close_span_with_error():
    testbed = make_testbed()
    env = testbed.env
    tele = telemetry.enable(testbed, profile=False)
    a = testbed.add_node("a")
    b = testbed.add_node("b")
    b.fail()

    retry = RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=1.0,
                        jitter=0.0)
    outcome = drive(env, request_response(
        testbed.net, "a", "b", op="doomed", timeout_s=1.0, retry=retry,
    ))
    env.run(until=60.0)
    assert isinstance(outcome["error"], RpcTimeout)

    spans = tele.tracer.spans_named("doomed")
    assert len(spans) == 1
    assert "RpcTimeout" in spans[0].attrs["error"]
    assert tele.tracer.open_spans() == []


def test_ticket_timeout_closes_vm_span_with_error():
    """B's queued-then-timed-out ticket span must close with the error."""
    dep = make_deployment()
    env = dep.env
    tele = telemetry.enable(dep, profile=False)
    vm = dep.vmanager
    client = dep.new_client("setup")
    blob_holder = {}

    def setup():
        blob_holder["id"] = yield env.process(client.create_blob(8.0))

    process = env.process(setup())
    dep.run(until=process)
    blob_id = blob_holder["id"]

    node_a = dep.testbed.add_node("caller-a")
    node_b = dep.testbed.add_node("caller-b")

    a_out = drive(env, vm.remote_ticket(node_a, blob_id, 8.0, "A"))
    dep.run(until=env.now + 1.0)
    assert a_out["value"] is not None

    b_out = drive(env, vm.remote_ticket(node_b, blob_id, 8.0, "B",
                                        timeout_s=2.0))
    dep.run(until=env.now + 5.0)
    assert isinstance(b_out["error"], RpcTimeout)

    tickets = tele.tracer.spans_named("vm.ticket")
    failed = [s for s in tickets if "error" in s.attrs]
    assert len(failed) == 1
    assert "RpcTimeout" in failed[0].attrs["error"]
    assert all(s.finished for s in tickets)
    assert tele.tracer.open_spans() == []
    vm.abandon(a_out["value"])


def test_client_rpc_timeout_surfaces_as_op_failure():
    """A client with tight timeouts fails cleanly when the VM vanishes."""
    dep = make_deployment()
    env = dep.env
    dep.net.blackhole_missing = True
    client = dep.new_client("c", rpc_timeout_s=2.0)
    blob_holder = {}

    def setup():
        blob_holder["id"] = yield env.process(client.create_blob(8.0))

    process = env.process(setup())
    dep.run(until=process)

    dep.actor_nodes["vm"].fail()
    outcome = drive(env, client.append(blob_holder["id"], 8.0))
    dep.run(until=env.now + 30.0)
    assert isinstance(outcome["error"], RpcTimeout)
    assert client.history[-1].ok is False


def test_retry_gives_up_instead_of_sleeping_past_deadline():
    """Backoff that would overshoot the deadline raises now, not later.

    Regression: with a long backoff and a near-exhausted deadline the
    old code slept the full backoff, woke past the deadline, burned one
    more doomed attempt and raised late.  The caller must get the error
    at the moment the budget is provably gone.
    """
    testbed = make_testbed()
    env = testbed.env
    policy = RetryPolicy(max_attempts=10, base_delay_s=5.0, jitter=0.0,
                         deadline_s=3.0)
    attempts = []

    def attempt():
        attempts.append(env.now)
        yield env.timeout(1.0)
        raise RpcTimeout("op", "callee", 1.0)

    outcome = drive(env, with_retries(env, attempt, retry=policy))
    env.run(until=30.0)
    assert isinstance(outcome["error"], RpcTimeout)
    # Failed at t=1.0; backoff (5s) would sleep past the 3s deadline,
    # so the error surfaces immediately — no sleep, no extra attempt.
    assert outcome["at"] == pytest.approx(1.0)
    assert attempts == [0.0]
