"""Tests for trust management, detection engine, and enforcement."""

import pytest

from repro.security import (
    Action,
    DetectionEngine,
    PolicyEnforcement,
    Policy,
    Severity,
    TrustManager,
    UserActivityHistory,
    UserEvent,
    Violation,
    parse_condition,
)


def uev(t, client="c1", kind="op_start", op="write", mb=0.0, ok=True):
    return UserEvent(time=t, client_id=client, kind=kind, op=op, bytes_mb=mb, ok=ok)


def flood(history, client, start, count, spacing=0.1):
    for i in range(count):
        history.record(uev(start + i * spacing, client=client))


def flood_policy(threshold=1.0, window=10.0):
    return Policy(
        name="flood",
        condition=parse_condition(f"rate(op_start) > {threshold}"),
        window_s=window,
        severity=Severity.CRITICAL,
        actions=[Action.LOG, Action.THROTTLE, Action.BLOCK],
    )


# ------------------------------------------------------------------ trust
def test_trust_starts_at_initial():
    trust = TrustManager(initial_trust=0.8)
    assert trust.trust_of("x", now=0.0) == pytest.approx(0.8)


def test_trust_punish_scales_with_severity():
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0)
    t_warn = trust.punish("a", Severity.WARNING, now=0.0)
    t_crit = trust.punish("b", Severity.CRITICAL, now=0.0)
    assert t_crit < t_warn < 1.0


def test_trust_recovers_over_time():
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.01)
    trust.punish("a", Severity.CRITICAL, now=0.0)
    low = trust.trust_of("a", now=0.0)
    later = trust.trust_of("a", now=50.0)
    assert later == pytest.approx(low + 0.5)
    assert trust.trust_of("a", now=10_000.0) == 1.0  # capped


def test_trust_floor_holds():
    trust = TrustManager(initial_trust=0.5, recovery_per_s=0.0, floor=0.05)
    for _ in range(20):
        trust.punish("a", Severity.CRITICAL, now=0.0)
    assert trust.trust_of("a", now=0.0) == pytest.approx(0.05)


def test_trust_threshold_factor_range():
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0)
    assert trust.threshold_factor("fresh", now=0.0) == pytest.approx(1.0)
    for _ in range(10):
        trust.punish("bad", Severity.CRITICAL, now=0.0)
    factor = trust.threshold_factor("bad", now=0.0)
    assert 0.25 <= factor < 0.5


def test_trust_escalation_ladder():
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0,
                         block_threshold=0.2, throttle_threshold=0.5)
    assert trust.recommended_escalation("good", now=0.0) == "log"
    trust.punish("mid", Severity.SERIOUS, now=0.0)  # 1.0 -> 0.5 -> below throttle? 0.5 not < 0.5
    trust.punish("mid", Severity.WARNING, now=0.0)  # 0.4
    assert trust.recommended_escalation("mid", now=0.0) == "throttle"
    for _ in range(4):
        trust.punish("bad", Severity.CRITICAL, now=0.0)
    assert trust.recommended_escalation("bad", now=0.0) == "block"


# ------------------------------------------------------------------ detection engine
def test_detection_fires_on_flood():
    history = UserActivityHistory()
    flood(history, "evil", start=0.0, count=50)
    engine = DetectionEngine(history, [flood_policy()], scan_interval_s=5.0)
    violations = engine.scan_once(now=5.0)
    assert len(violations) == 1
    assert violations[0].client_id == "evil"


def test_detection_ignores_normal_clients():
    history = UserActivityHistory()
    history.record(uev(1.0, client="good"))
    history.record(uev(9.0, client="good"))
    engine = DetectionEngine(history, [flood_policy()])
    assert engine.scan_once(now=10.0) == []


def test_detection_refire_holdoff():
    history = UserActivityHistory()
    flood(history, "evil", start=0.0, count=200, spacing=0.1)
    engine = DetectionEngine(history, [flood_policy()], refire_holdoff_s=30.0)
    assert len(engine.scan_once(now=10.0)) == 1
    assert engine.scan_once(now=15.0) == []  # silenced
    flood(history, "evil", start=30.0, count=200, spacing=0.05)
    assert len(engine.scan_once(now=41.0)) == 1  # holdoff expired
    assert engine.violations[-1].occurrence == 2


def test_detection_confirmations_delay_firing():
    history = UserActivityHistory()
    flood(history, "evil", start=0.0, count=500, spacing=0.05)
    engine = DetectionEngine(history, [flood_policy()], confirmations=3)
    assert engine.scan_once(now=5.0) == []
    assert engine.scan_once(now=10.0) == []
    assert len(engine.scan_once(now=15.0)) == 1


def test_detection_confirmation_streak_resets():
    history = UserActivityHistory()
    flood(history, "evil", start=0.0, count=50, spacing=0.05)  # burst ends t=2.5
    engine = DetectionEngine(history, [flood_policy(window=10.0)], confirmations=2)
    assert engine.scan_once(now=5.0) == []  # streak 1
    assert engine.scan_once(now=30.0) == []  # quiet window: streak resets
    flood(history, "evil", start=30.0, count=50, spacing=0.05)
    assert engine.scan_once(now=32.0) == []  # streak 1 again
    assert len(engine.scan_once(now=34.0)) == 1


def test_detection_trust_tightens_thresholds():
    history = UserActivityHistory()
    # 8 ops in 10 s: rate 0.8, below the 1.0 threshold for a trusted user.
    flood(history, "repeat", start=0.0, count=8, spacing=1.0)
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0)
    engine = DetectionEngine(history, [flood_policy()], trust=trust)
    assert engine.scan_once(now=10.0) == []
    # After punishment, the same behaviour trips the scaled threshold.
    for _ in range(5):
        trust.punish("repeat", Severity.CRITICAL, now=10.0)
    flood(history, "repeat", start=10.0, count=8, spacing=1.0)
    assert len(engine.scan_once(now=20.0)) == 1


def test_first_detection_recorded():
    history = UserActivityHistory()
    flood(history, "evil", start=0.0, count=100)
    engine = DetectionEngine(history, [flood_policy()])
    engine.scan_once(now=7.0)
    assert engine.first_detection("evil") == 7.0
    assert engine.first_detection("good") is None
    assert engine.detected_clients() == ["evil"]


# ------------------------------------------------------------------ enforcement
class FakeTarget:
    def __init__(self):
        self.blocked = {}
        self.throttled = {}

    def block(self, client_id, reason):
        self.blocked[client_id] = reason

    def unblock(self, client_id):
        self.blocked.pop(client_id, None)

    def throttle(self, client_id, cap_mbps):
        self.throttled[client_id] = cap_mbps

    def unthrottle(self, client_id):
        self.throttled.pop(client_id, None)


def violation(client="evil", severity=Severity.CRITICAL,
              actions=(Action.LOG, Action.THROTTLE, Action.BLOCK),
              occurrence=1, time=10.0):
    policy = Policy(
        name="p", condition="count(op_start) > 0", window_s=10.0,
        severity=severity, actions=list(actions),
    )
    return Violation(time=time, client_id=client, policy=policy, occurrence=occurrence)


def test_enforcement_blocks_critical_without_trust():
    target = FakeTarget()
    enforcement = PolicyEnforcement(target)
    sanction = enforcement.apply(violation(severity=Severity.CRITICAL))
    assert sanction.action is Action.BLOCK
    assert "evil" in target.blocked


def test_enforcement_trusted_first_offense_is_mild():
    target = FakeTarget()
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0)
    enforcement = PolicyEnforcement(target, trust=trust)
    sanction = enforcement.apply(violation())
    assert sanction.action is Action.LOG
    assert target.blocked == {}
    # Trust was punished by the violation.
    assert trust.trust_of("evil", now=10.0) < 1.0


def test_enforcement_escalates_repeat_offender():
    target = FakeTarget()
    trust = TrustManager(initial_trust=1.0, recovery_per_s=0.0)
    enforcement = PolicyEnforcement(target, trust=trust)
    enforcement.apply(violation(occurrence=1))
    sanction = enforcement.apply(violation(occurrence=2))
    assert sanction.action is Action.BLOCK


def test_enforcement_low_trust_goes_straight_to_block():
    target = FakeTarget()
    trust = TrustManager(initial_trust=0.1, recovery_per_s=0.0)
    enforcement = PolicyEnforcement(target, trust=trust)
    sanction = enforcement.apply(violation())
    assert sanction.action is Action.BLOCK


def test_enforcement_system_pressure_escalates():
    target = FakeTarget()
    trust = TrustManager(initial_trust=0.4, recovery_per_s=0.0)  # -> throttle
    enforcement = PolicyEnforcement(target, trust=trust, load_probe=lambda: 0.95)
    sanction = enforcement.apply(violation())
    assert sanction.action is Action.BLOCK  # escalated one step


def test_enforcement_respects_policy_action_menu():
    target = FakeTarget()
    enforcement = PolicyEnforcement(target)
    sanction = enforcement.apply(
        violation(severity=Severity.CRITICAL, actions=(Action.LOG, Action.ALERT))
    )
    # The policy never allows blocking; strongest available is ALERT.
    assert sanction.action is Action.ALERT
    assert target.blocked == {}


def test_enforcement_lift_restores_access():
    target = FakeTarget()
    enforcement = PolicyEnforcement(target, clock=lambda: 99.0)
    enforcement.apply(violation())
    assert enforcement.blocked_clients() == ["evil"]
    enforcement.lift("evil")
    assert enforcement.blocked_clients() == []
    assert target.blocked == {}
    assert enforcement.sanctions[0].lifted_at == 99.0


def test_enforcement_throttle_applies_cap():
    target = FakeTarget()
    trust = TrustManager(initial_trust=0.4, recovery_per_s=0.0)
    enforcement = PolicyEnforcement(target, trust=trust, throttle_cap_mbps=7.0)
    sanction = enforcement.apply(violation())
    assert sanction.action is Action.THROTTLE
    assert target.throttled["evil"] == 7.0


def test_block_time_reported():
    target = FakeTarget()
    enforcement = PolicyEnforcement(target)
    enforcement.apply(violation(time=42.0))
    assert enforcement.block_time("evil") == 42.0
    assert enforcement.block_time("other") is None
