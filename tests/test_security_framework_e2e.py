"""End-to-end tests of the assembled PolicyManagement stack."""

import pytest

from repro.blobseer import AccessTable, BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.monitoring import MonitoringConfig, MonitoringStack
from repro.security import (
    Action,
    Policy,
    PolicyManagement,
    SecurityConfig,
    Severity,
    dos_flood_policy,
)
from repro.workloads import CorrectWriter, DosAttacker


def build_stack(policies=None, config=None, seed=71):
    access = AccessTable()
    deployment = BlobSeerDeployment(
        BlobSeerConfig(
            data_providers=8, metadata_providers=2, chunk_size_mb=64.0,
            tree_capacity=1 << 10,
            testbed=TestbedConfig(seed=seed, rate_granularity_s=0.01),
        ),
        access=access,
    )
    monitoring = MonitoringStack(deployment.testbed, MonitoringConfig(
        services=2, storage_servers=2, flush_interval_s=1.0,
    ))
    monitoring.attach(deployment)
    security = PolicyManagement(
        deployment, monitoring,
        policies=policies or [dos_flood_policy(max_rate_per_s=1.0, window_s=10.0)],
        access_table=access,
        config=config or SecurityConfig(
            scan_interval_s=5.0, history_pull_interval_s=2.0,
        ),
    )
    return deployment, monitoring, security, access


def test_summary_reflects_pipeline_state():
    deployment, monitoring, security, _access = build_stack()
    writer = CorrectWriter(deployment.new_client("w"), op_mb=256.0, max_ops=2)
    deployment.env.process(writer.run(deployment.env))
    security.start()
    deployment.run(until=40.0)
    summary = security.summary()
    assert summary["history_events"] > 0
    assert summary["scans"] >= 7
    assert summary["violations"] == 0
    assert summary["blocked"] == []


def test_detection_delay_reported_per_client():
    deployment, monitoring, security, _access = build_stack()
    attacker = DosAttacker(deployment.new_client("evil"),
                           start_at=5.0, parallel=16, chunk_size_mb=1.0)
    deployment.env.process(attacker.run(deployment.env))
    security.start()
    deployment.run(until=60.0)
    delay = security.detection_delay("evil", attack_start=5.0)
    assert delay is not None and 0 < delay < 30
    assert security.detection_delay("ghost", attack_start=0.0) is None


def test_start_is_idempotent():
    deployment, monitoring, security, _access = build_stack()
    security.start()
    security.start()  # second call must not double the loops
    deployment.run(until=21.0)
    # 4 scans at 5 s intervals, not 8.
    assert security.engine.scans == 4


def test_throttle_policy_applies_rate_cap_end_to_end():
    policy = Policy(
        name="soft-limit",
        condition="rate(op_start) > 0.5",
        window_s=10.0,
        severity=Severity.WARNING,
        actions=[Action.THROTTLE],
    )
    deployment, monitoring, security, access = build_stack(
        policies=[policy],
        config=SecurityConfig(
            scan_interval_s=5.0, history_pull_interval_s=2.0, use_trust=False,
        ),
    )
    attacker = DosAttacker(deployment.new_client("greedy"),
                           start_at=2.0, parallel=8, chunk_size_mb=1.0)
    deployment.env.process(attacker.run(deployment.env))
    security.start()
    deployment.run(until=60.0)
    # Throttled, not blocked: the client keeps running but capped.
    assert "greedy" in access.throttled
    assert not access.is_blocked("greedy")
    assert not attacker.blocked
    sanctions = [s.action for s in security.enforcement.sanctions]
    assert Action.THROTTLE in sanctions
    assert Action.BLOCK not in sanctions


def test_lift_restores_blocked_client():
    deployment, monitoring, security, access = build_stack()
    attacker = DosAttacker(deployment.new_client("evil"),
                           start_at=2.0, parallel=16, chunk_size_mb=1.0)
    deployment.env.process(attacker.run(deployment.env))
    security.start()
    deployment.run(until=60.0)
    assert access.is_blocked("evil")
    security.enforcement.lift("evil")
    assert not access.is_blocked("evil")

    # The client can operate again.
    client = deployment.clients["evil"]

    def retry(env):
        blob_id = yield env.process(client.create_blob(64.0))
        result = yield env.process(client.append(blob_id, 64.0))
        return result.ok

    process = deployment.env.process(retry(deployment.env))
    assert deployment.run(until=process) is True
