"""Tests for the security-policy description language and history."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.security import (
    Policy,
    PolicyError,
    Severity,
    UserActivityHistory,
    UserEvent,
    parse_condition,
)
from repro.security.policy import (
    Action,
    AndCondition,
    EvaluationContext,
    MetricCondition,
    NotCondition,
    OrCondition,
    bandwidth_hog_policy,
    dos_flood_policy,
    failed_op_policy,
    metadata_hammer_policy,
)


def make_history(events):
    history = UserActivityHistory()
    for event in events:
        history.record(event)
    return history


def uev(t, client="c1", kind="op_start", op="write", mb=0.0, ok=True, blob=1):
    return UserEvent(time=t, client_id=client, kind=kind, op=op,
                     bytes_mb=mb, blob_id=blob, ok=ok)


# ------------------------------------------------------------------ parser
def test_parse_simple_comparison():
    node = parse_condition("count(op_start) > 5")
    assert isinstance(node, MetricCondition)
    assert node.metric == "count"
    assert node.kind == "op_start"
    assert node.threshold == 5.0


def test_parse_with_filters():
    node = parse_condition("rate(op_start, op='write') >= 1.5")
    assert node.op_filter == "write"
    assert node.op == ">="


def test_parse_ok_filter():
    node = parse_condition("count(op_end, ok=false) > 3")
    assert node.ok_filter is False


def test_parse_and_or_not_precedence():
    node = parse_condition(
        "count(op_start) > 1 and count(op_end) > 2 or not sum(chunk_write) < 5"
    )
    assert isinstance(node, OrCondition)
    assert isinstance(node.parts[0], AndCondition)
    assert isinstance(node.parts[1], NotCondition)


def test_parse_parentheses():
    node = parse_condition(
        "count(op_start) > 1 and (count(op_end) > 2 or count(op_end) < 1)"
    )
    assert isinstance(node, AndCondition)
    assert isinstance(node.parts[1], OrCondition)


def test_parse_star_kind():
    node = parse_condition("count(*) > 10")
    assert node.kind == "*"


def test_parse_errors():
    for bad in (
        "count(op_start) >",
        "count > 5",
        "unknownmetric(op_start) > 5",
        "count(op_start) % 5",
        "count(op_start, bogus=1) > 5",
        "count(op_start) > 5 extra",
        "count(op_start, op=write) > 5",  # unquoted string
    ):
        with pytest.raises(PolicyError):
            parse_condition(bad)


def test_describe_mentions_structure():
    text = "rate(op_start, op='write') > 2 and not count(op_end, ok=false) > 3"
    description = parse_condition(text).describe()
    assert "rate" in description
    assert "not" in description
    assert "op='write'" in description


# ------------------------------------------------------------------ metric evaluation
def test_count_and_rate_metrics():
    events = [uev(t) for t in range(10)]
    ctx = EvaluationContext("c1", events, window_s=10.0, now=10.0)
    assert parse_condition("count(op_start) == 10").evaluate(ctx)
    assert parse_condition("rate(op_start) >= 1").evaluate(ctx)
    assert not parse_condition("rate(op_start) > 1").evaluate(ctx)


def test_sum_mean_max_metrics():
    events = [uev(1, kind="chunk_write", mb=10.0), uev(2, kind="chunk_write", mb=30.0)]
    ctx = EvaluationContext("c1", events, window_s=10.0, now=10.0)
    assert parse_condition("sum(chunk_write) == 40").evaluate(ctx)
    assert parse_condition("mean(chunk_write) == 20").evaluate(ctx)
    assert parse_condition("max(chunk_write) == 30").evaluate(ctx)


def test_distinct_metric_counts_blobs():
    events = [uev(1, blob=1), uev(2, blob=2), uev(3, blob=2)]
    ctx = EvaluationContext("c1", events, window_s=10.0, now=10.0)
    assert parse_condition("distinct(op_start) == 2").evaluate(ctx)


def test_failures_metric():
    events = [uev(1, kind="op_end", ok=False), uev(2, kind="op_end", ok=True)]
    ctx = EvaluationContext("c1", events, window_s=10.0, now=10.0)
    assert parse_condition("failures(op_end) == 1").evaluate(ctx)


def test_op_filter_selects_subset():
    events = [uev(1, op="write"), uev(2, op="read"), uev(3, op="write")]
    ctx = EvaluationContext("c1", events, window_s=10.0, now=10.0)
    assert parse_condition("count(op_start, op='write') == 2").evaluate(ctx)


# ------------------------------------------------------------------ Policy objects
def test_policy_evaluate_over_window():
    history = make_history([uev(t) for t in range(20)])
    policy = Policy(
        name="flood",
        condition=parse_condition("rate(op_start) > 0.5"),
        window_s=10.0,
    )
    assert policy.evaluate(history, "c1", now=20.0)
    assert not policy.evaluate(history, "nobody", now=20.0)


def test_policy_min_events_guard():
    history = make_history([uev(19.9)])
    policy = Policy(
        name="flood",
        condition=parse_condition("count(op_start) > 0"),
        window_s=1.0,
        min_events=3,
    )
    assert not policy.evaluate(history, "c1", now=20.0)


def test_policy_accepts_string_condition():
    policy = Policy(name="p", condition="count(op_start) > 1", window_s=5.0)
    assert isinstance(policy.condition, MetricCondition)


def test_policy_bad_window_rejected():
    with pytest.raises(PolicyError):
        Policy(name="p", condition="count(op_start) > 1", window_s=0)


def test_canned_policies_construct_and_describe():
    for policy in (
        dos_flood_policy(),
        bandwidth_hog_policy(),
        failed_op_policy(),
        metadata_hammer_policy(),
    ):
        assert policy.describe()
        assert policy.actions
        assert isinstance(policy.severity, Severity)


def test_dos_flood_policy_fires_on_append_flood():
    history = make_history([uev(t / 10.0, op="append") for t in range(100)])
    policy = dos_flood_policy(max_rate_per_s=2.0, window_s=10.0)
    assert policy.evaluate(history, "c1", now=10.0)


# ------------------------------------------------------------------ history container
def test_history_window_queries():
    history = make_history([uev(t) for t in range(10)])
    assert len(history.events("c1", since=5.0)) == 5
    assert len(history.events("c1", since=2.0, until=4.0)) == 3
    assert history.clients() == ["c1"]


def test_history_kind_filter():
    history = make_history([uev(1), uev(2, kind="op_end")])
    assert len(history.events("c1", kind="op_end")) == 1


def test_history_out_of_order_inserts_stay_sorted():
    history = UserActivityHistory()
    for t in (5.0, 1.0, 3.0, 2.0):
        history.record(uev(t))
    times = [e.time for e in history.events("c1")]
    assert times == sorted(times)


def test_history_prune_drops_old():
    history = UserActivityHistory(retention_s=10.0)
    for t in range(20):
        history.record(uev(float(t)))
    dropped = history.prune(now=20.0)
    assert dropped == 10
    assert len(history) == 10


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50))
def test_history_property_sorted_and_complete(times):
    history = UserActivityHistory()
    for t in times:
        history.record(uev(t))
    stored = [e.time for e in history.events("c1")]
    assert stored == sorted(times)
