"""Unit + property tests for the copy-on-write segment-tree metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blobseer.blob import ChunkDescriptor
from repro.blobseer.metadata import LocalKV
from repro.blobseer.segment_tree import (
    node_key,
    tree_node_count,
    tree_query,
    tree_update,
)


def drain(generator):
    """Run a KV-generator to completion synchronously (LocalKV yields nothing)."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def make_descriptors(blob_id, first, count, version=1):
    return {
        first + i: ChunkDescriptor(
            blob_id=blob_id,
            storage_key=f"b{blob_id}.w{version}.c{first + i}",
            size_mb=64.0,
            replicas=["p0"],
        )
        for i in range(count)
    }


CAP = 16  # small capacity for readable tests


def test_single_write_and_query():
    kv = LocalKV()
    descs = make_descriptors(1, 0, 4)
    drain(tree_update(kv, 1, 1, None, descs, capacity=CAP))
    result = drain(tree_query(kv, 1, 1, 0, 4, capacity=CAP))
    assert sorted(result) == [0, 1, 2, 3]
    assert result[2].storage_key == "b1.w1.c2"


def test_query_subrange():
    kv = LocalKV()
    drain(tree_update(kv, 1, 1, None, make_descriptors(1, 0, 8), capacity=CAP))
    result = drain(tree_query(kv, 1, 1, 2, 5, capacity=CAP))
    assert sorted(result) == [2, 3, 4]


def test_holes_are_absent():
    kv = LocalKV()
    drain(tree_update(kv, 1, 1, None, make_descriptors(1, 4, 2), capacity=CAP))
    result = drain(tree_query(kv, 1, 1, 0, CAP, capacity=CAP))
    assert sorted(result) == [4, 5]


def test_cow_versioning_preserves_old_version():
    kv = LocalKV()
    v1 = make_descriptors(1, 0, 4, version=1)
    drain(tree_update(kv, 1, 1, None, v1, capacity=CAP))
    v2 = make_descriptors(1, 2, 2, version=2)
    drain(tree_update(kv, 1, 2, 1, v2, capacity=CAP))

    # Old version still reads the original chunks.
    old = drain(tree_query(kv, 1, 1, 0, 4, capacity=CAP))
    assert old[2].storage_key == "b1.w1.c2"
    # New version sees the overwrite in [2,4) and inherits [0,2).
    new = drain(tree_query(kv, 1, 2, 0, 4, capacity=CAP))
    assert new[0].storage_key == "b1.w1.c0"
    assert new[2].storage_key == "b1.w2.c2"
    assert new[3].storage_key == "b1.w2.c3"


def test_append_chain_of_versions():
    kv = LocalKV()
    prev = None
    for version in range(1, 5):
        descs = make_descriptors(1, (version - 1) * 2, 2, version=version)
        drain(tree_update(kv, 1, version, prev, descs, capacity=CAP))
        prev = version
    result = drain(tree_query(kv, 1, 4, 0, 8, capacity=CAP))
    assert sorted(result) == list(range(8))
    for i in range(8):
        assert result[i].storage_key == f"b1.w{i // 2 + 1}.c{i}"


def test_update_write_count_is_bounded():
    kv = LocalKV()
    span = 4
    writes = drain(tree_update(kv, 1, 1, None, make_descriptors(1, 0, span), capacity=CAP))
    assert writes <= tree_node_count(span, CAP)


def test_shared_subtrees_not_rewritten():
    kv = LocalKV()
    drain(tree_update(kv, 1, 1, None, make_descriptors(1, 0, CAP), capacity=CAP))
    before = len(kv)
    # Touch a single chunk: only one root-to-leaf path is rewritten.
    drain(tree_update(kv, 1, 2, 1, make_descriptors(1, 7, 1, version=2), capacity=CAP))
    path_length = CAP.bit_length()  # log2(CAP) + 1 nodes
    assert len(kv) - before == path_length


def test_non_contiguous_descriptors_rejected():
    kv = LocalKV()
    descs = make_descriptors(1, 0, 1)
    descs.update(make_descriptors(1, 3, 1))
    with pytest.raises(ValueError):
        drain(tree_update(kv, 1, 1, None, descs, capacity=CAP))


def test_empty_update_rejected():
    kv = LocalKV()
    with pytest.raises(ValueError):
        drain(tree_update(kv, 1, 1, None, {}, capacity=CAP))


def test_out_of_capacity_rejected():
    kv = LocalKV()
    with pytest.raises(ValueError):
        drain(tree_update(kv, 1, 1, None, make_descriptors(1, CAP, 1), capacity=CAP))


def test_bad_capacity_rejected():
    kv = LocalKV()
    with pytest.raises(ValueError):
        drain(tree_update(kv, 1, 1, None, make_descriptors(1, 0, 1), capacity=13))


def test_query_range_validation():
    kv = LocalKV()
    with pytest.raises(ValueError):
        drain(tree_query(kv, 1, 1, 4, 2, capacity=CAP))


def test_node_key_uniqueness():
    keys = {
        node_key(b, v, lo, hi)
        for b in (1, 2)
        for v in (1, 2)
        for lo, hi in ((0, 8), (0, 4), (4, 8))
    }
    assert len(keys) == 12


# -- property-based: version isolation under arbitrary write sequences ---------
@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, CAP - 1), st.integers(1, CAP)).map(
            lambda t: (t[0], min(t[1], CAP - t[0]))
        ),
        min_size=1,
        max_size=8,
    )
)
def test_versions_match_reference_model(writes):
    """Each version's full-range query equals a naive dict-of-arrays model."""
    kv = LocalKV()
    reference = {}  # version -> {index: storage_key}
    current = {}
    prev = None
    for version, (first, count) in enumerate(writes, start=1):
        descs = make_descriptors(1, first, count, version=version)
        drain(tree_update(kv, 1, version, prev, descs, capacity=CAP))
        current = dict(current)
        for index, descriptor in descs.items():
            current[index] = descriptor.storage_key
        reference[version] = current
        prev = version

    for version, expected in reference.items():
        got = drain(tree_query(kv, 1, version, 0, CAP, capacity=CAP))
        assert {i: d.storage_key for i, d in got.items()} == expected
