"""Tests for the sharded control plane (BENCH-META machinery).

Covers the determinism matrix the sharding PR promises:

- defaults (``vm_shards=1``, batching/pipelining off) are byte-identical
  to a config that never mentions the new knobs, across seeds;
- sharded/batched/pipelined runs are exactly reproducible per seed;
- one blob's version history stays totally ordered on its one owning
  shard under concurrent same-blob writers;
- a shard's primary can be killed mid-churn and the chaos invariants
  still hold (sharding composes with epoch-fenced failover);
- batched publish and pipelined tickets change timings, never outcomes;
- batched allocation serves a whole write in one RPC.
"""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.blobseer.sharding import ShardRouter, shard_of
from repro.cluster import TestbedConfig
from repro.robustness import ChaosHarness, steady_append_load
from repro.workloads.scenarios import build_fanout_scenario

SEEDS = (0, 7)


def run_fanout(seed, **overrides):
    kwargs = dict(writers=6, ops_per_writer=3, op_mb=4.0, chunk_size_mb=2.0,
                  data_providers=6, metadata_providers=2, seed=seed)
    kwargs.update(overrides)
    scenario = build_fanout_scenario(**kwargs)
    scenario.run()
    return scenario


def final_blob_state(deployment):
    """Per-blob (latest, size) across all shards — the protocol outcome."""
    state = {}
    for vm in deployment.authority_vms():
        for blob_id, info in vm.blobs.items():
            state[blob_id] = (info.latest, round(info.size_mb, 9))
    return state


# ------------------------------------------------------------- determinism
@pytest.mark.parametrize("seed", SEEDS)
def test_defaults_byte_identical_to_unsharded_config(seed):
    """A config that spells out the new knobs' defaults produces the
    exact observable stream of one that predates them."""
    implicit = run_fanout(seed)
    explicit = run_fanout(seed, vm_shards=1, pm_shards=1, vm_batch=False,
                          client_pipelining=False, per_chunk_allocation=False)
    assert implicit.observables() == explicit.observables()


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_run_reproducible(seed):
    first = run_fanout(seed, vm_shards=4, pm_shards=2, vm_batch=True)
    second = run_fanout(seed, vm_shards=4, pm_shards=2, vm_batch=True)
    assert first.observables() == second.observables()


def test_different_seeds_diverge():
    # Round-robin consumes no randomness, so force a seeded strategy.
    a = run_fanout(0, vm_shards=4, vm_batch=True, allocation="random")
    b = run_fanout(7, vm_shards=4, vm_batch=True, allocation="random")
    assert a.observables() != b.observables()


# ------------------------------------------------------------- id routing
def test_blob_ids_partition_into_residue_classes():
    scenario = run_fanout(0, writers=8, vm_shards=4)
    dep = scenario.deployment
    for s, vm in enumerate(dep.vm_shards):
        for blob_id in vm.blobs:
            assert shard_of(blob_id, 4) == s
            assert (blob_id - 1) % 4 == s
    # Every shard minted ids (creates round-robin across shards) and the
    # registries are disjoint.
    all_blobs = [b for vm in dep.vm_shards for b in vm.blobs]
    assert len(all_blobs) == len(set(all_blobs)) == 8
    assert all(vm.blobs for vm in dep.vm_shards)


def test_shard_router_requires_targets():
    with pytest.raises(ValueError):
        ShardRouter([], iter(()))


# ------------------------------------------------- per-blob total order
def test_per_blob_total_order_under_concurrent_writers():
    """Many clients appending to ONE shared blob through 4 shards: the
    owning shard serializes them into a gap-free, time-monotone history."""
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=6, metadata_providers=2, vm_shards=4,
        vm_batch=True, testbed=TestbedConfig(seed=3),
    ))
    clients = [dep.new_client(f"c{i}") for i in range(6)]
    state = {}

    def creator():
        state["blob"] = yield from clients[0].create_blob(2.0)

    dep.env.process(creator(), name="create")
    dep.run()
    blob_id = state["blob"]

    def writer(client):
        for _ in range(4):
            yield from client.append(blob_id, 4.0)

    procs = [dep.env.process(writer(c), name=c.client_id) for c in clients]
    dep.run(until=dep.env.all_of(procs))

    owner = dep.vm_shards[shard_of(blob_id, 4)]
    info = owner.blobs[blob_id]
    versions = sorted(v for v, rec in info.versions.items() if rec.published)
    assert versions == list(range(1, 25))  # 6 writers x 4 appends, no gaps
    times = [info.versions[v].publish_time for v in versions]
    assert times == sorted(times)
    assert info.latest == 24
    # The blob exists on exactly its owning shard.
    for s, vm in enumerate(dep.vm_shards):
        assert (blob_id in vm.blobs) == (vm is owner)


# ------------------------------------------------- failover composition
def test_shard_primary_crash_mid_churn_invariants_hold():
    """vm_shards=2 x vm_replicas=3: kill shard 1's primary mid-load; the
    shard fails over under its own epoch fence and every chaos
    invariant holds across both shards."""
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=6, metadata_providers=2, chunk_size_mb=8.0,
        vm_shards=2, vm_replicas=3, testbed=TestbedConfig(seed=42),
    ))
    clients = [dep.new_client(f"c{i}", rpc_timeout_s=4.0) for i in range(2)]
    harness = ChaosHarness(dep, check_every_s=5.0, settle_s=30.0)
    assert harness.resolve_target("vm-primary").name == "vm-node"
    assert harness.resolve_target("vm-primary-s1").name == "vm-node-s1"

    def load(client):
        blob_id = yield from client.create_blob(8.0)
        yield from steady_append_load(client, blob_id, 8.0,
                                      period_s=1.0, stop_at=60.0)

    for client in clients:
        dep.env.process(load(client), name=f"load-{client.client_id}")
    dep.run(until=2.0)  # both creates land (one blob per shard)
    assert all(vm.blobs for vm in dep.vm_shards)
    harness.apply_schedule([
        {"at": 7.0, "kind": "crash", "node": "vm-primary-s1",
         "recover_after": 20.0},
    ])
    report = harness.run(until=60.0)

    harness.assert_clean()
    assert report["checks_run"] > 5
    # The crash hit shard 1's group, shard 0 never failed over.
    assert len(dep.vm_groups[1].failovers) == 1
    assert len(dep.vm_groups[0].failovers) == 0
    assert report["vm_shards"][1]["failovers"] == 1
    # Both clients kept writing through the outage.
    for client in clients:
        acked = [op for op in client.history if op.op == "append" and op.ok]
        assert len(acked) >= 30


# ------------------------------------------------- batching / pipelining
def test_batching_changes_timing_not_outcomes():
    off = run_fanout(5, vm_shards=2)
    on = run_fanout(5, vm_shards=2, vm_batch=True)
    assert final_blob_state(off.deployment) == final_blob_state(on.deployment)
    assert off.completed_ops() == on.completed_ops() == 18
    gates = [vm.batch_gate for vm in on.deployment.vm_shards]
    assert all(g is not None for g in gates)
    assert sum(g.batched_ops for g in gates) > 0
    # A thundering start on one shard must actually form multi-request
    # batches (8 simultaneous creates share one gate).
    burst = run_fanout(5, writers=8, op_mb=1.0, chunk_size_mb=1.0,
                       vm_batch=True, ramp_s=0.0)
    gate = burst.deployment.vmanager.batch_gate
    assert gate.max_batch_seen >= 2
    assert gate.mean_batch_size() > 1.0


def test_pipelining_changes_timing_not_outcomes():
    off = run_fanout(5)
    on = run_fanout(5, client_pipelining=True)
    again = run_fanout(5, client_pipelining=True)
    assert on.observables() == again.observables()
    assert final_blob_state(off.deployment) == final_blob_state(on.deployment)
    assert on.completed_ops() == off.completed_ops() == 18
    # Overlapping ticket with chunk pushes can only help the makespan.
    assert on.makespan_s() <= off.makespan_s() + 1e-9


def test_cached_allocation_reproducible():
    first = run_fanout(9, allocation="least_loaded_cached", vm_shards=2,
                       pm_shards=2)
    second = run_fanout(9, allocation="least_loaded_cached", vm_shards=2,
                        pm_shards=2)
    assert first.observables() == second.observables()
    strategies = [pm.strategy for pm in first.deployment.pm_shards]
    assert all(s.refreshes > 0 for s in strategies)


def test_batched_allocation_one_rpc_per_write():
    batched = run_fanout(1, writers=4, ops_per_writer=2, op_mb=8.0,
                         chunk_size_mb=1.0)
    per_chunk = run_fanout(1, writers=4, ops_per_writer=2, op_mb=8.0,
                           chunk_size_mb=1.0, per_chunk_allocation=True)
    b = batched.control_plane_stats()
    p = per_chunk.control_plane_stats()
    assert b["allocated_chunks"] == p["allocated_chunks"] == 64
    assert b["allocation_rpcs"] == 8       # one per write
    assert p["allocation_rpcs"] == 64      # one per chunk
    assert final_blob_state(batched.deployment) == final_blob_state(
        per_chunk.deployment)


# ------------------------------------------------------- gate edge cases
def test_group_commit_gate_fails_waiters_when_node_dies():
    """A VM crash mid-batch must fail queued publishes, not hang them."""
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=4, metadata_providers=2, vm_batch=True,
        testbed=TestbedConfig(seed=1),
    ))
    clients = [dep.new_client(f"c{i}") for i in range(4)]
    outcomes = []

    def writer(client):
        try:
            blob_id = yield from client.create_blob(2.0)
            yield from client.append(blob_id, 4.0)
            outcomes.append("ok")
        except Exception as exc:  # noqa: BLE001 - recording the kind
            outcomes.append(type(exc).__name__)

    for client in clients:
        dep.env.process(writer(client), name=client.client_id)

    def killer():
        yield dep.env.timeout(0.004)  # mid-way through the entry batches
        dep.testbed.node("vm-node").fail()

    dep.env.process(killer(), name="killer")
    dep.run(until=5.0)
    assert len(outcomes) == 4
    assert any(o != "ok" for o in outcomes)  # the crash was observed...
    # ...as raised RPC errors, never as a silent hang (all 4 resolved).


def test_config_validation():
    with pytest.raises(ValueError):
        BlobSeerDeployment(BlobSeerConfig(vm_shards=0))
    with pytest.raises(ValueError):
        BlobSeerDeployment(BlobSeerConfig(pm_shards=2, pm_standby=True))
