"""Edge-case tests for the simulation kernel and resource primitives."""

import pytest

from repro.simulation import (
    AnyOf,
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


def test_any_of_fails_if_child_fails_first():
    env = Environment()
    bad = env.event()
    slow = env.timeout(10.0)

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(RuntimeError("child failed"))

    def waiter(env):
        try:
            yield env.any_of([bad, slow])
        except RuntimeError as exc:
            return str(exc)
        return "ok"

    env.process(failer(env))
    process = env.process(waiter(env))
    assert env.run(until=process) == "child failed"


def test_all_of_failure_defuses_later_failures():
    """After an AllOf fails, other children failing must not crash the run."""
    env = Environment()
    first = env.event()
    second = env.event()

    def failer(env):
        yield env.timeout(1.0)
        first.fail(ValueError("first"))
        yield env.timeout(1.0)
        second.fail(ValueError("second"))

    def waiter(env):
        try:
            yield env.all_of([first, second])
        except ValueError:
            pass
        yield env.timeout(5.0)
        return "survived"

    env.process(failer(env))
    process = env.process(waiter(env))
    assert env.run(until=process) == "survived"


def test_interrupt_while_waiting_on_resource():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(100.0)
        resource.release(request)

    def impatient(env):
        request = resource.request()
        try:
            yield request
        except Interrupt:
            request.cancel()
            log.append(("interrupted", env.now))

    env.process(holder(env))
    victim = env.process(impatient(env))

    def interrupter(env):
        yield env.timeout(3.0)
        victim.interrupt()

    env.process(interrupter(env))
    env.run(until=10.0)
    assert log == [("interrupted", 3.0)]
    # The cancelled request must not be granted later.
    assert len(resource.queue) == 0


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc(env):
        timeout = env.timeout(1.0, value="x")
        yield env.timeout(5.0)  # timeout fires (and is processed) meanwhile
        value = yield timeout  # already processed: resume with its value
        return (env.now, value)

    process = env.process(proc(env))
    assert env.run(until=process) == (5.0, "x")


def test_yield_already_failed_event_raises():
    env = Environment()
    dead = env.event()
    dead.fail(RuntimeError("long gone"))
    dead.defused()

    def proc(env):
        yield env.timeout(2.0)
        try:
            yield dead
        except RuntimeError:
            return "raised"
        return "ok"

    process = env.process(proc(env))
    assert env.run(until=process) == "raised"


def test_priority_resource_cancel_from_heap():
    env = Environment()
    resource = PriorityResource(env, capacity=1)

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(10.0)
        resource.release(request)

    cancelled = {}

    def quitter(env):
        yield env.timeout(0.1)
        request = resource.request(priority=1)
        result = yield request | env.timeout(1.0)
        if request not in result:
            request.cancel()
            cancelled["at"] = env.now

    env.process(holder(env))
    env.process(quitter(env))
    env.run()
    assert cancelled["at"] == pytest.approx(1.1)
    assert resource.queue_length == 0


def test_store_put_get_interleave_under_pressure():
    env = Environment()
    store = Store(env, capacity=2)
    consumed = []

    def producer(env):
        for i in range(10):
            yield store.put(i)

    def consumer(env):
        for _ in range(10):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(0.1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert consumed == list(range(10))


def test_run_until_event_never_triggered_raises():
    env = Environment()
    orphan = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_env_event_ordering_urgent_before_normal():
    env = Environment()
    order = []
    normal = env.event()
    urgent = env.event()
    normal._ok = True
    normal._value = "normal"
    urgent._ok = True
    urgent._value = "urgent"
    normal.callbacks.append(lambda e: order.append(e.value))
    urgent.callbacks.append(lambda e: order.append(e.value))
    env.schedule(normal, delay=1.0)
    env.schedule(urgent, delay=1.0, urgent=True)
    env.run()
    assert order == ["urgent", "normal"]
