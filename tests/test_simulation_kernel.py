"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=42.0)
    assert env.now == 42.0


def test_timeout_advances_clock():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(3.0)
        times.append(env.now)
        yield env.timeout(1.5)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [3.0, 4.5]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "result"

    process = env.process(proc(env))
    assert env.run(until=process) == "result"
    assert env.now == 2.0


def test_process_waits_on_process():
    env = Environment()
    order = []

    def child(env):
        yield env.timeout(5.0)
        order.append("child")
        return 99

    def parent(env):
        value = yield env.process(child(env))
        order.append("parent")
        assert value == 99

    env.process(parent(env))
    env.run()
    assert order == ["child", "parent"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter(env):
        value = yield gate
        woke.append((env.now, value))

    def opener(env):
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert woke == [(7.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_crashes_run():
    env = Environment()
    gate = env.event()
    gate.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def outer(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(outer(env))
    env.run()
    assert caught == ["inner"]


def test_unwaited_process_exception_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("unobserved")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unobserved"):
        env.run()


def test_interrupt_delivered_at_wait_point():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 3.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(2.0)
        log.append(env.now)

    victim = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3.0)
        victim.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [5.0]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    process = env.process(bad(env))

    def watcher(env):
        try:
            yield process
        except SimulationError:
            return "caught"

    watch = env.process(watcher(env))
    assert env.run(until=watch) == "caught"


def test_all_of_waits_for_everything():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        value = yield env.all_of([t1, t2])
        results.append((env.now, value[t1], value[t2]))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, "a", "b")]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        value = yield env.any_of([t1, t2])
        results.append((env.now, t1 in value, t2 in value))

    env.process(proc(env))
    env.run(until=10.0)
    assert results == [(1.0, True, False)]


def test_condition_operators():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1.0)
        t2 = env.timeout(2.0)
        yield t1 & t2
        results.append(env.now)
        t3 = env.timeout(1.0)
        t4 = env.timeout(9.0)
        yield t3 | t4
        results.append(env.now)

    env.process(proc(env))
    env.run(until=20.0)
    assert results == [2.0, 3.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        yield env.all_of([])
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [0.0]


def test_event_ordering_fifo_at_same_time():
    env = Environment()
    order = []

    def proc(env, label):
        yield env.timeout(1.0)
        order.append(label)

    for label in "abc":
        env.process(proc(env, label))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    # The timeout itself is scheduled.
    assert env.peek() == 4.0


def test_process_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_many_processes_interleave_deterministically():
    env = Environment()
    trace = []

    def worker(env, k):
        for i in range(3):
            yield env.timeout(k)
            trace.append((env.now, k, i))

    for k in (1, 2, 3):
        env.process(worker(env, k))
    env.run()
    assert trace == sorted(trace, key=lambda t: t[0])
    assert len(trace) == 9


# -- call_at / call_later bare-callback fast path -----------------------------

def test_call_later_runs_bare_callback_at_time():
    env = Environment()
    fired = []
    env.call_later(2.5, lambda _ev: fired.append(env.now))
    env.run()
    assert fired == [2.5]


def test_call_at_absolute_time():
    env = Environment()
    fired = []
    env.call_later(1.0, lambda _ev: env.call_at(4.0, lambda _e: fired.append(env.now)))
    env.run()
    assert fired == [4.0]


def test_call_at_in_past_raises():
    env = Environment()
    env.timeout(5.0)
    env.run()
    with pytest.raises(ValueError):
        env.call_at(1.0, lambda _ev: None)


def test_call_later_negative_delay_raises():
    env = Environment()
    with pytest.raises(ValueError):
        env.call_later(-0.1, lambda _ev: None)


def test_call_at_now_runs_after_current_event():
    # Scheduling at the current instant from inside a callback is legal
    # and runs later in the same timestep (FIFO by insertion id).
    env = Environment()
    order = []

    def first(_ev):
        order.append("first")
        env.call_at(env.now, lambda _e: order.append("second"))

    env.call_later(1.0, first)
    env.run()
    assert order == ["first", "second"]


def test_call_interleaves_with_timeouts_fifo():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(1.0)
        order.append("process")

    env.process(proc(env))
    env.call_later(1.0, lambda _ev: order.append("call"))
    env.run()
    # The bare call was heap-pushed first (the process only creates its
    # timeout when it first steps, at t=0), so it pops first at t=1.
    assert order == ["call", "process"]


def test_scheduled_call_ducktypes_event_protocol():
    from repro.simulation import ScheduledCall

    sc = ScheduledCall(lambda _ev: None)
    assert sc.triggered
    assert not sc.processed
    assert sc._ok and sc._defused
    env = Environment()
    env.call_later(0.0, lambda _ev: None)
    env.run()
    assert env.events_processed == 1


def test_scheduled_calls_count_as_events():
    env = Environment()
    for i in range(5):
        env.call_later(float(i), lambda _ev: None)
    env.run()
    assert env.events_processed == 5
    assert env.now == 4.0
