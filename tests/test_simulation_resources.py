"""Unit tests for Resource, PriorityResource, Container, Store, FilterStore."""

import pytest

from repro.simulation import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    grants = []

    def user(env, k):
        request = resource.request()
        yield request
        grants.append((env.now, k))
        yield env.timeout(10.0)
        resource.release(request)

    for k in range(3):
        env.process(user(env, k))
    env.run()
    # Two enter at t=0, the third at t=10 when a slot frees.
    assert grants == [(0.0, 0), (0.0, 1), (10.0, 2)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(env, k):
        with resource.request() as request:
            yield request
            order.append((env.now, k))
            yield env.timeout(1.0)

    env.process(user(env, "a"))
    env.process(user(env, "b"))
    env.run()
    assert order == [(0.0, "a"), (1.0, "b")]


def test_resource_count_tracks_usage():
    env = Environment()
    resource = Resource(env, capacity=3)
    observed = []

    def user(env):
        request = resource.request()
        yield request
        observed.append(resource.count)
        yield env.timeout(1.0)
        resource.release(request)

    for _ in range(3):
        env.process(user(env))
    env.run()
    assert max(observed) == 3
    assert resource.count == 0


def test_resource_cancel_queued_request():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(5.0)
        resource.release(request)

    def impatient(env):
        request = resource.request()
        result = yield request | env.timeout(1.0)
        if request not in result:
            request.cancel()
            return "gave up"
        return "got it"

    env.process(holder(env))
    process = env.process(impatient(env))
    assert env.run(until=process) == "gave up"
    # The queue must be empty after cancellation.
    assert len(resource.queue) == 0


def test_priority_resource_serves_lowest_first():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(1.0)
        resource.release(request)

    def user(env, prio, label):
        yield env.timeout(0.1)  # enqueue while the holder owns the slot
        request = resource.request(priority=prio)
        yield request
        order.append(label)
        resource.release(request)

    env.process(holder(env))
    env.process(user(env, 5, "low"))
    env.process(user(env, 1, "high"))
    env.process(user(env, 3, "mid"))
    env.run()
    assert order == ["high", "mid", "low"]


# ---------------------------------------------------------------- Container
def test_container_put_get_levels():
    env = Environment()
    tank = Container(env, capacity=100.0, init=50.0)
    assert tank.level == 50.0

    def proc(env):
        yield tank.get(30.0)
        assert tank.level == 20.0
        yield tank.put(70.0)
        assert tank.level == 90.0

    env.process(proc(env))
    env.run()
    assert tank.level == 90.0


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100.0, init=0.0)
    times = []

    def consumer(env):
        yield tank.get(10.0)
        times.append(env.now)

    def producer(env):
        yield env.timeout(4.0)
        yield tank.put(10.0)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [4.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    times = []

    def producer(env):
        yield tank.put(5.0)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(3.0)
        yield tank.get(7.0)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [3.0]


def test_container_rejects_bad_init():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=5.0, init=9.0)


# ---------------------------------------------------------------- Store
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ("x", "y", "z"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_on_empty():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        yield store.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(2.5)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [2.5]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        times.append(env.now)

    def consumer(env):
        yield env.timeout(7.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [7.0]


def test_store_try_put_respects_capacity():
    env = Environment()
    store = Store(env, capacity=2)

    def proc(env):
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert list(store.items) == [1, 2]


def test_filter_store_selects_by_predicate():
    env = Environment()
    store = FilterStore(env)
    received = []

    def producer(env):
        for item in (1, 2, 3, 4):
            yield store.put(item)

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        received.append(item)
        item = yield store.get(lambda x: x % 2 == 0)
        received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [2, 4]
    assert list(store.items) == [1, 3]


def test_filter_store_waits_for_matching_item():
    env = Environment()
    store = FilterStore(env)
    received = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        received.append((env.now, item))

    def producer(env):
        yield store.put("noise")
        yield env.timeout(5.0)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == [(5.0, "wanted")]
