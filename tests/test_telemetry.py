"""Tests for the cross-layer telemetry subsystem (repro.telemetry)."""

import json

import pytest

from repro import telemetry
from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.simulation import Environment, SimulationError
from repro.telemetry import (
    NULL_TRACER,
    KernelProfiler,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    metrics_to_csv,
    metrics_to_json,
)


# ---------------------------------------------------------------------------
# Tracer basics
# ---------------------------------------------------------------------------

def test_environment_defaults_to_null_tracer():
    env = Environment()
    assert env.tracer is NULL_TRACER
    assert not env.tracer.enabled
    assert env.metrics is None
    assert env.profiler is None
    # The disabled path records nothing and hands back the null span.
    span = env.tracer.begin("anything", track="x", size_mb=1.0)
    assert span.finish() is span
    with env.tracer.span("ctx"):
        pass
    env.tracer.instant("mark")
    assert len(env.tracer) == 0
    assert env.tracer.tracks() == []


def test_span_timing_and_attrs():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        span = tracer.begin("op", track="node-1", cat="test", size_mb=64.0)
        yield env.timeout(2.5)
        span.annotate(chunks=4)
        span.finish(ok=True)

    env.process(proc(env))
    env.run()
    (span,) = tracer.spans
    assert span.name == "op"
    assert span.track == "node-1"
    assert span.cat == "test"
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration_s == 2.5
    assert span.attrs == {"size_mb": 64.0, "chunks": 4, "ok": True}
    assert span.finished
    # finish() is idempotent: a second call must not re-record the span.
    span.finish(extra=True)
    assert len(tracer.spans) == 1
    assert "extra" not in span.attrs


def test_span_nesting_follows_the_active_process():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        with tracer.span("outer", track="client-0"):
            yield env.timeout(1.0)
            with tracer.span("inner") as inner:
                yield env.timeout(1.0)
                assert inner.track == "client-0"  # inherited from parent

    env.process(proc(env))
    env.run()
    outer = tracer.spans_named("outer")[0]
    inner = tracer.spans_named("inner")[0]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == 0
    assert tracer.children_of(outer) == [inner]
    assert tracer.open_spans() == []


def test_span_stacks_are_per_process():
    env = Environment()
    tracer = Tracer(env)

    def worker(env, name):
        with tracer.span("work", track=name):
            yield env.timeout(1.0)

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    spans = tracer.spans_named("work")
    assert len(spans) == 2
    # Concurrent processes never see each other's spans as parents.
    assert all(s.parent_id == 0 for s in spans)


def test_detached_span_does_not_join_the_stack():
    env = Environment()
    tracer = Tracer(env)

    def proc(env):
        with tracer.span("op", track="client-0"):
            flow = tracer.begin("net.flow", detached=True)
            yield env.timeout(1.0)
            # A sibling begun after the detached span parents to "op",
            # not to the still-open flow span.
            with tracer.span("child"):
                yield env.timeout(1.0)
            flow.finish()

    env.process(proc(env))
    env.run()
    op = tracer.spans_named("op")[0]
    flow = tracer.spans_named("net.flow")[0]
    child = tracer.spans_named("child")[0]
    assert flow.parent_id == op.span_id  # still linked for the tree
    assert child.parent_id == op.span_id  # but not stacked under the flow


def test_span_context_manager_records_errors():
    env = Environment()
    tracer = Tracer(env)
    with pytest.raises(ValueError):
        with tracer.span("risky", track="main"):
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.attrs["error"] == "ValueError: boom"


def test_tracer_caps_spans_at_max_spans():
    env = Environment()
    tracer = Tracer(env, max_spans=3)
    for i in range(5):
        tracer.begin(f"s{i}", track="main").finish()
    assert len(tracer.spans) == 3
    assert tracer.dropped == 2


def test_instants_are_recorded():
    env = Environment()
    tracer = Tracer(env)
    tracer.instant("adapt.replicate", track="loop", cat="adaptation", blob="b1")
    (mark,) = tracer.instants
    assert mark.name == "adapt.replicate"
    assert mark.attrs == {"blob": "b1"}
    assert tracer.tracks() == ["loop"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

def test_metrics_counters_gauges_histograms():
    env = Environment()
    metrics = MetricsRegistry(env)
    metrics.counter("ops").inc()
    metrics.counter("ops").inc(2)
    assert metrics.counter("ops").value == 3
    with pytest.raises(ValueError):
        metrics.counter("ops").inc(-1)

    metrics.gauge("depth").set(7)
    metrics.gauge("depth").add(-2)
    assert metrics.gauge("depth").value == 5

    hist = metrics.histogram("latency_s")
    for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
        hist.observe(v)
    assert hist.count == 5
    assert hist.min == 1.0 and hist.max == 5.0
    assert hist.percentile(50) == 3.0
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 5.0


def test_metrics_series_stamp_env_now():
    env = Environment()
    metrics = MetricsRegistry(env)

    def proc(env):
        yield env.timeout(3.0)
        metrics.sample("throughput", 42.0)

    env.process(proc(env))
    env.run()
    assert metrics.series("throughput").points == [(3.0, 42.0)]
    dump = metrics.to_dict()
    assert dump["throughput"]["points"] == [[3.0, 42.0]]


# ---------------------------------------------------------------------------
# Kernel profiler + max_events guard
# ---------------------------------------------------------------------------

def test_profiler_counts_every_engine_event():
    env = Environment()
    profiler = KernelProfiler()
    env.profiler = profiler

    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(ticker(env), name="ticker")
    env.run()
    assert profiler.events_popped == env.events_processed > 0
    assert profiler.process_steps["ticker"] > 0
    assert profiler.hottest_processes(1)[0][0] == "ticker"
    snap = profiler.snapshot()
    assert snap["events_popped"] == env.events_processed
    assert snap["process_steps_total"] >= profiler.process_steps["ticker"]


def test_max_events_guard_raises_with_kernel_stats():
    env = Environment()
    telemetry.enable(env)

    def runaway(env):
        while True:
            yield env.timeout(0.001)

    env.process(runaway(env), name="runaway")
    with pytest.raises(SimulationError) as excinfo:
        env.run(max_events=50)
    err = excinfo.value
    assert "50 events" in str(err)
    assert err.kernel_stats["events_processed"] == 50
    assert err.kernel_stats["heap_depth"] >= 0
    assert "events_popped" in err.kernel_stats


def test_max_events_guard_allows_finite_runs():
    env = Environment()

    def short(env):
        yield env.timeout(1.0)

    env.process(short(env))
    env.run(max_events=10_000)  # must not raise
    assert env.now == 1.0


# ---------------------------------------------------------------------------
# Full-stack traces from a real deployment
# ---------------------------------------------------------------------------

def make_deployment(seed=11):
    return BlobSeerDeployment(BlobSeerConfig(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=64.0,
        testbed=TestbedConfig(seed=seed),
    ))


def run_write_read(deployment, op_mb=256.0):
    tele = telemetry.enable(deployment)
    client = deployment.new_client("c0")

    def workload(env):
        blob_id = yield from client.create_blob(chunk_size_mb=64.0)
        yield from client.append(blob_id, op_mb)
        yield from client.read(blob_id, size_mb=op_mb, offset_mb=0.0)

    deployment.env.process(workload(deployment.env))
    deployment.run()
    return tele


def test_deployment_trace_covers_every_layer():
    tele = run_write_read(make_deployment())
    names = {s.name for s in tele.tracer.spans}
    for expected in [
        "client.create", "client.append", "client.read",
        "client.allocate", "client.chunk_transfer", "client.ticket",
        "client.metadata_write", "client.publish", "client.fetch",
        "pm.allocate", "vm.create_blob", "vm.ticket", "vm.publish",
        "provider.ingest", "provider.serve", "net.flow",
    ]:
        assert expected in names, f"missing span {expected}"
    assert tele.tracer.open_spans() == []

    # The span tree is navigable: the append root owns the phase spans.
    (append,) = tele.tracer.spans_named("client.append")
    child_names = {s.name for s in tele.tracer.children_of(append)}
    assert {"client.allocate", "client.chunk_transfer",
            "client.ticket", "client.metadata_write",
            "client.publish"} <= child_names

    # Cross-layer metrics landed too.
    metrics = tele.metrics
    assert metrics.counter("client.append_ops").value == 1
    assert metrics.counter("net.flows_completed").value > 0
    assert metrics.counter("vm.versions_published").value >= 1


def test_same_seed_produces_byte_identical_trace():
    json_a = chrome_trace_json(run_write_read(make_deployment(seed=5)).tracer)
    json_b = chrome_trace_json(run_write_read(make_deployment(seed=5)).tracer)
    assert json_a == json_b
    # Negative control: a different workload changes the trace.
    json_c = chrome_trace_json(
        run_write_read(make_deployment(seed=5), op_mb=320.0).tracer)
    assert json_a != json_c


def test_chrome_trace_is_well_formed():
    tele = run_write_read(make_deployment())
    trace = chrome_trace(tele.tracer)
    events = trace["traceEvents"]
    assert events, "trace must not be empty"

    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == len(tele.tracer.spans)
    # One thread_name per track plus one process_name.
    thread_names = {e["args"]["name"] for e in meta
                    if e["name"] == "thread_name"}
    assert thread_names == set(tele.tracer.tracks())

    last_ts = {}
    for event in complete:
        assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert event["dur"] >= 0
        key = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(key, -1.0), "ts must be monotonic per track"
        last_ts[key] = event["ts"]

    # Round-trips through json.
    json.loads(chrome_trace_json(tele.tracer))


def test_trace_includes_instant_events():
    env = Environment()
    tele = telemetry.enable(env)
    env.tracer.instant("security.violation", track="detection-engine",
                       cat="security", client="evil")
    trace = chrome_trace(tele.tracer)
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "security.violation"
    assert instants[0]["s"] == "t"


# ---------------------------------------------------------------------------
# Exports + summary
# ---------------------------------------------------------------------------

def test_metrics_exports(tmp_path):
    tele = run_write_read(make_deployment())
    payload = json.loads(metrics_to_json(tele.metrics))
    assert payload["client.append_ops"]["value"] == 1
    csv_text = metrics_to_csv(tele.metrics)
    assert csv_text.splitlines()[0] == "series,time,value"
    assert any(line.startswith("client.throughput_mbps,")
               for line in csv_text.splitlines())

    json_path = tmp_path / "metrics.json"
    csv_path = tmp_path / "metrics.csv"
    tele.write_metrics(str(json_path), str(csv_path))
    assert json.loads(json_path.read_text())
    assert csv_path.read_text().startswith("series,time,value")


def test_write_chrome_trace_and_summary(tmp_path):
    tele = run_write_read(make_deployment())
    path = tmp_path / "trace.json"
    tele.write_chrome_trace(str(path))
    data = json.loads(path.read_text())
    assert data["traceEvents"]

    text = tele.summary()
    assert "client.append" in text
    assert "events_popped" in text

    tele.uninstall()
    assert tele.env.tracer is NULL_TRACER
    assert tele.env.metrics is None
    assert tele.env.profiler is None


def test_null_tracer_is_shared_and_stateless():
    a, b = Environment(), Environment()
    assert a.tracer is b.tracer is NULL_TRACER
    assert isinstance(NULL_TRACER, NullTracer)
    NULL_TRACER.begin("x").annotate(y=1).finish()
    assert NULL_TRACER.spans == ()
