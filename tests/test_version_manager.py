"""Focused unit tests for the version manager's serialization protocol."""

import pytest

from repro.blobseer import (
    BlobNotFound,
    BlobSeerConfig,
    BlobSeerDeployment,
    BlobSeerError,
    VersionNotFound,
)
from repro.cluster import TestbedConfig


def make_deployment():
    return BlobSeerDeployment(BlobSeerConfig(
        data_providers=4, metadata_providers=1, tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=77),
    ))


def test_create_blob_validates_chunk_size():
    dep = make_deployment()
    with pytest.raises(ValueError):
        dep.vmanager.create_blob(0)
    with pytest.raises(ValueError):
        dep.vmanager.create_blob(-5)


def test_blob_info_unknown_blob():
    dep = make_deployment()
    with pytest.raises(BlobNotFound):
        dep.vmanager.blob_info(99)
    with pytest.raises(BlobNotFound):
        dep.vmanager.latest(99)


def test_version_record_requires_publication():
    dep = make_deployment()
    blob_id = dep.vmanager.create_blob(64.0)
    with pytest.raises(VersionNotFound):
        dep.vmanager.version_record(blob_id, 1)


def test_tickets_serialize_per_blob():
    """A second writer's ticket is only granted after the first writer
    completes (the per-blob metadata critical section)."""
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    blob_id = vm.create_blob(64.0)
    caller_a = dep.testbed.add_node("caller-a")
    caller_b = dep.testbed.add_node("caller-b")
    log = []

    def writer_a(env):
        ticket = yield from vm.remote_ticket(caller_a, blob_id, 64.0, "a")
        log.append(("a-ticket", env.now, ticket.version))
        yield env.timeout(5.0)  # long metadata phase
        yield from vm.remote_complete(caller_a, ticket)
        log.append(("a-done", env.now))

    def writer_b(env):
        yield env.timeout(0.5)  # request while A holds the lock
        ticket = yield from vm.remote_ticket(caller_b, blob_id, 64.0, "b")
        log.append(("b-ticket", env.now, ticket.version))
        yield from vm.remote_complete(caller_b, ticket)
        log.append(("b-done", env.now))

    env.process(writer_a(env))
    env.process(writer_b(env))
    dep.run(until=30.0)

    events = {name: entry for entry in log for name in [entry[0]]}
    assert events["a-ticket"][2] == 1
    assert events["b-ticket"][2] == 2
    # B's ticket was held back until A completed.
    assert events["b-ticket"][1] >= events["a-done"][1]
    assert vm.latest(blob_id)[0] == 2
    assert vm.latest(blob_id)[1] == 128.0  # two 64 MB appends


def test_tickets_to_distinct_blobs_do_not_serialize():
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    blob_a = vm.create_blob(64.0)
    blob_b = vm.create_blob(64.0)
    caller = dep.testbed.add_node("caller")
    grants = []

    def writer(env, blob_id, name):
        ticket = yield from vm.remote_ticket(caller, blob_id, 64.0, name)
        grants.append((name, env.now))
        yield env.timeout(5.0)
        yield from vm.remote_complete(caller, ticket)

    env.process(writer(env, blob_a, "a"))
    env.process(writer(env, blob_b, "b"))
    dep.run(until=30.0)
    times = dict(grants)
    # Both tickets granted promptly: no cross-blob serialization.
    assert times["a"] < 1.0 and times["b"] < 1.0


def test_abandon_releases_the_lock():
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    blob_id = vm.create_blob(64.0)
    caller = dep.testbed.add_node("caller")
    log = []

    def failing_writer(env):
        ticket = yield from vm.remote_ticket(caller, blob_id, 64.0, "crasher")
        log.append(("crasher-ticket", ticket.version))
        # Writer dies before completing: abandon instead of publish.
        vm.abandon(ticket)

    def healthy_writer(env):
        yield env.timeout(1.0)
        ticket = yield from vm.remote_ticket(caller, blob_id, 64.0, "healthy")
        log.append(("healthy-ticket", ticket.version))
        yield from vm.remote_complete(caller, ticket)

    env.process(failing_writer(env))
    env.process(healthy_writer(env))
    dep.run(until=30.0)
    # The abandoned version number is burned; the healthy writer got v2
    # and could publish (the lock was released).
    assert ("crasher-ticket", 1) in log
    assert ("healthy-ticket", 2) in log
    assert vm.latest(blob_id)[0] == 2
    # Version 1 never published.
    with pytest.raises(VersionNotFound):
        vm.version_record(blob_id, 1)


def test_double_publish_rejected():
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    blob_id = vm.create_blob(64.0)
    caller = dep.testbed.add_node("caller")

    def scenario(env):
        ticket = yield from vm.remote_ticket(caller, blob_id, 64.0, "w")
        yield from vm.remote_complete(caller, ticket)
        try:
            yield from vm.remote_complete(caller, ticket)
        except BlobSeerError:
            return "rejected"
        return "accepted"

    process = env.process(scenario(env))
    assert dep.run(until=process) == "rejected"


def test_append_offsets_assigned_in_ticket_order():
    dep = make_deployment()
    env = dep.env
    vm = dep.vmanager
    blob_id = vm.create_blob(64.0)
    caller = dep.testbed.add_node("caller")
    offsets = {}

    def writer(env, name, size):
        ticket = yield from vm.remote_ticket(caller, blob_id, size, name)
        offsets[name] = ticket.offset_mb
        yield from vm.remote_complete(caller, ticket)

    def sequence(env):
        yield env.process(writer(env, "first", 128.0))
        yield env.process(writer(env, "second", 64.0))
        yield env.process(writer(env, "third", 256.0))

    process = env.process(sequence(env))
    dep.run(until=process)
    assert offsets == {"first": 0.0, "second": 128.0, "third": 192.0}
    assert vm.latest(blob_id)[1] == 448.0


def test_explicit_offset_write_grows_size_to_end():
    dep = make_deployment()
    vm = dep.vmanager
    blob_id = vm.create_blob(64.0)
    caller = dep.testbed.add_node("caller")

    def scenario(env):
        ticket = yield from vm.remote_ticket(
            caller, blob_id, 64.0, "w", offset_mb=256.0
        )
        yield from vm.remote_complete(caller, ticket)

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    # Sparse write at offset 256: size = 320 (offset + size).
    assert vm.latest(blob_id)[1] == 320.0


def test_publish_latency_recorded_in_events():
    from repro.blobseer import RecordingSink

    sink = RecordingSink()
    dep = BlobSeerDeployment(BlobSeerConfig(
        data_providers=4, metadata_providers=1, tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=77),
    ), sink=sink)
    client = dep.new_client("c")

    def scenario(env):
        blob_id = yield env.process(client.create_blob(64.0))
        yield env.process(client.append(blob_id, 64.0))

    process = dep.env.process(scenario(dep.env))
    dep.run(until=process)
    publishes = sink.of_type("publish")
    assert len(publishes) == 1
    assert publishes[0].fields["latency_s"] > 0
