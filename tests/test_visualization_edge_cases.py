"""Edge-case tests for the §IV-A visualization helpers.

These helpers are now shared by the dashboard *and* the telemetry
summary renderer, so their degenerate inputs (empty series, single
points, constant series) must stay well-defined.
"""

import math

from repro.introspection.visualization import (
    bar_chart,
    series_to_csv,
    sparkline,
    table,
)

SPARK_CHARS = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# sparkline
# ---------------------------------------------------------------------------

def test_sparkline_empty_series():
    assert sparkline([]) == "(no data)"


def test_sparkline_single_point_is_flat():
    assert sparkline([42.0]) == SPARK_CHARS[0]


def test_sparkline_constant_series_is_flat():
    line = sparkline([5.0, 5.0, 5.0, 5.0])
    assert line == SPARK_CHARS[0] * 4


def test_sparkline_monotonic_series_uses_full_range():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == SPARK_CHARS[0]
    assert line[-1] == SPARK_CHARS[-1]
    assert len(line) == 4


def test_sparkline_downsamples_long_series():
    line = sparkline(list(range(1000)), width=60)
    assert len(line) == 60
    assert line[0] == SPARK_CHARS[0]
    assert line[-1] == SPARK_CHARS[-1]
    # Downsampling a monotone series keeps it (weakly) monotone.
    levels = [SPARK_CHARS.index(c) for c in line]
    assert levels == sorted(levels)


def test_sparkline_handles_negative_values():
    line = sparkline([-3.0, 0.0, 3.0])
    assert line[0] == SPARK_CHARS[0]
    assert line[-1] == SPARK_CHARS[-1]


# ---------------------------------------------------------------------------
# series_to_csv
# ---------------------------------------------------------------------------

def test_series_to_csv_empty_series_is_header_only():
    assert series_to_csv([]) == "time,value\n"


def test_series_to_csv_single_point():
    text = series_to_csv([(1.5, 2.25)])
    assert text == "time,value\n1.500,2.250000\n"


def test_series_to_csv_custom_header():
    text = series_to_csv([(0.0, 1.0)], header="t_s,mb_per_s")
    assert text.splitlines()[0] == "t_s,mb_per_s"


def test_series_to_csv_output_is_nan_free_and_parseable():
    series = [(0.0, 0.0), (0.123456, 98.7654321), (10.0, -1.0)]
    text = series_to_csv(series)
    lines = text.splitlines()
    assert lines[0] == "time,value"
    assert len(lines) == 1 + len(series)
    for line in lines[1:]:
        t, v = line.split(",")
        assert math.isfinite(float(t))
        assert math.isfinite(float(v))
    assert "nan" not in text.lower()


# ---------------------------------------------------------------------------
# bar_chart / table
# ---------------------------------------------------------------------------

def test_bar_chart_empty():
    assert bar_chart([]) == "(no data)"


def test_bar_chart_all_zero_values_does_not_divide_by_zero():
    chart = bar_chart([("a", 0.0), ("b", 0.0)])
    assert "a" in chart and "b" in chart
    assert "#" not in chart  # zero-length bars


def test_bar_chart_scales_to_peak():
    chart = bar_chart([("small", 1.0), ("big", 10.0)], width=10)
    lines = dict(line.split(" | ") for line in chart.splitlines())
    assert lines["big  "].count("#") == 10
    assert lines["small"].count("#") == 1


def test_table_empty_rows_still_renders_header():
    text = table(["a", "bb"], [])
    lines = text.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert set(lines[1]) <= {"-", " "}


def test_table_pads_to_widest_cell():
    text = table(["x"], [["wide-cell"], ["y"]])
    widths = {len(line.rstrip()) for line in text.splitlines()}
    # Separator and widest row share the same width.
    assert max(widths) == len("wide-cell")
