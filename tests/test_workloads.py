"""Tests for workload behaviours and canned scenarios (end-to-end)."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import TestbedConfig
from repro.workloads import (
    CorrectReader,
    CorrectWriter,
    DosAttacker,
    build_dos_scenario,
    build_write_scenario,
)


def small_deployment(**overrides):
    defaults = dict(
        data_providers=8,
        metadata_providers=2,
        chunk_size_mb=64.0,
        tree_capacity=1 << 10,
        testbed=TestbedConfig(seed=11, rate_granularity_s=0.01),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def test_correct_writer_streams_ops():
    dep = small_deployment()
    writer = CorrectWriter(dep.new_client("w"), op_mb=128.0, max_ops=3)
    process = dep.env.process(writer.run(dep.env))
    dep.run(until=process)
    assert len(writer.results) == 3
    assert writer.total_written_mb() == pytest.approx(384.0)
    assert writer.mean_throughput() > 50.0
    assert writer.mean_duration() > 0


def test_correct_writer_respects_stop_time():
    dep = small_deployment()
    writer = CorrectWriter(dep.new_client("w"), op_mb=128.0, stop_at=5.0)
    process = dep.env.process(writer.run(dep.env))
    dep.run(until=process)
    assert dep.now < 10.0
    assert writer.results  # managed at least one op


def test_correct_reader_reads_shared_blob():
    dep = small_deployment()
    writer_client = dep.new_client("w")

    def setup(env):
        blob_id = yield env.process(writer_client.create_blob(64.0))
        yield env.process(writer_client.append(blob_id, 256.0))
        return blob_id

    process = dep.env.process(setup(dep.env))
    blob_id = dep.run(until=process)
    reader = CorrectReader(dep.new_client("r"), blob_id, op_mb=256.0, max_ops=4)
    process = dep.env.process(reader.run(dep.env))
    dep.run(until=process)
    assert len(reader.results) == 4
    assert reader.mean_throughput() > 50.0


def test_dos_attacker_floods_and_counts():
    dep = small_deployment()
    attacker = DosAttacker(dep.new_client("evil"), parallel=8, chunk_size_mb=1.0)
    dep.env.process(attacker.run(dep.env))
    dep.run(until=20.0)
    assert attacker.ops_issued > 40
    assert not attacker.blocked


def test_dos_attacker_stops_when_blocked():
    from repro.blobseer import AccessTable

    access = AccessTable()
    dep = BlobSeerDeployment(
        BlobSeerConfig(data_providers=4, metadata_providers=1,
                       tree_capacity=1 << 10,
                       testbed=TestbedConfig(seed=11)),
        access=access,
    )
    attacker = DosAttacker(dep.new_client("evil"), parallel=4, chunk_size_mb=1.0)
    dep.env.process(attacker.run(dep.env))

    def blocker(env):
        yield env.timeout(10.0)
        access.block("evil", "test")
        dep.net.abort_matching(lambda f: f.tag == "evil", "blocked")

    dep.env.process(blocker(dep.env))
    dep.run(until=30.0)
    assert attacker.blocked
    assert attacker.blocked_at >= 10.0
    issued_at_block = attacker.ops_issued
    dep.run(until=40.0)
    assert attacker.ops_issued == issued_at_block  # flood stopped


def test_dos_attacker_ramp_spawns_gradually():
    dep = small_deployment()
    attacker = DosAttacker(
        dep.new_client("evil"), parallel=16, initial_parallel=2,
        ramp_interval_s=5.0, chunk_size_mb=1.0,
    )
    dep.env.process(attacker.run(dep.env))
    dep.run(until=2.0)
    early = attacker.parallel
    dep.run(until=30.0)
    assert early == 2
    assert attacker.parallel == 16


def test_write_scenario_builds_and_runs():
    scenario = build_write_scenario(
        clients=3, data_providers=10, metadata_providers=2,
        op_mb=256.0, ops_per_client=1, with_monitoring=True,
        monitoring_services=2, seed=3,
    )
    scenario.run()
    assert scenario.mean_client_throughput() > 50.0
    assert scenario.monitoring is not None
    assert scenario.monitoring.events_emitted > 0
    assert all(len(w.results) == 1 for w in scenario.writers)


def test_write_scenario_without_monitoring():
    scenario = build_write_scenario(
        clients=2, data_providers=8, metadata_providers=2,
        op_mb=128.0, ops_per_client=1, with_monitoring=False, seed=3,
    )
    scenario.run()
    assert scenario.monitoring is None
    assert scenario.mean_client_throughput() > 50.0


def test_dos_scenario_end_to_end_blocks_attackers():
    scenario = build_dos_scenario(
        n_clients=6,
        malicious_fraction=0.5,
        security_enabled=True,
        data_providers=12,
        metadata_providers=2,
        monitoring_services=2,
        op_mb=256.0,
        attack_start=10.0,
        attack_stagger_s=5.0,
        attack_parallel=32,
        seed=4,
        scan_interval_s=5.0,
        history_pull_interval_s=2.0,
        flush_interval_s=1.0,
        confirmations=1,
    )
    scenario.run(until=90.0)
    blocked = [a for a in scenario.attackers if a.blocked]
    assert len(blocked) == len(scenario.attackers) == 3
    # No correct client was sanctioned.
    for writer in scenario.correct:
        assert not writer.denied
    delays = scenario.detection_delays()
    assert len(delays) == 3
    assert all(0 < d < 60 for d in delays)


def test_dos_scenario_without_security_never_blocks():
    scenario = build_dos_scenario(
        n_clients=4,
        malicious_fraction=0.5,
        security_enabled=False,
        data_providers=8,
        metadata_providers=2,
        monitoring_services=2,
        op_mb=256.0,
        attack_start=5.0,
        attack_parallel=16,
        seed=4,
    )
    scenario.run(until=40.0)
    assert scenario.security is None
    assert all(not a.blocked for a in scenario.attackers)
    assert scenario.detection_delays() == []


def test_dos_scenario_attack_degrades_correct_clients():
    def mean_tput(security):
        scenario = build_dos_scenario(
            n_clients=8,
            malicious_fraction=0.5,
            security_enabled=security,
            data_providers=12,
            metadata_providers=2,
            monitoring_services=2,
            op_mb=512.0,
            attack_start=5.0,
            attack_stagger_s=2.0,
            attack_parallel=64,
            seed=4,
        )
        scenario.run(until=100.0)
        return scenario.correct_mean_throughput()

    attacked = mean_tput(security=False)
    protected = mean_tput(security=True)
    assert protected > attacked * 1.2  # security restores throughput
