"""Satellite tests: the client write path survives a provider crashing
mid-push by re-placing the chunk on a fresh provider."""

import pytest

from repro.blobseer import BlobSeerConfig, BlobSeerDeployment
from repro.cluster import FaultInjector, TestbedConfig


def make_deployment(replication=1, **overrides):
    defaults = dict(
        data_providers=6,
        metadata_providers=2,
        chunk_size_mb=64.0,
        replication=replication,
        testbed=TestbedConfig(seed=19),
    )
    defaults.update(overrides)
    return BlobSeerDeployment(BlobSeerConfig(**defaults))


def run_write_with_crash(dep, crash_delay=0.2, size_mb=64.0):
    """Append one op, crashing the first provider to receive data
    *crash_delay* seconds into the push.  Returns (result, victim)."""
    env = dep.env
    client = dep.new_client("c1")
    state = {}

    def scenario():
        blob_id = yield env.process(client.create_blob(64.0))
        state["blob"] = blob_id
        append = env.process(client.append(blob_id, size_mb))
        yield env.timeout(crash_delay)
        # Crash whichever provider is mid-ingest right now.
        receiving = {
            f.dst.name for f in dep.net.flows
            if f.src.name == client.node.name and f.size > 1.0
        }
        assert receiving, "expected an in-flight chunk push"
        victim = next(
            p for p in dep.providers.values() if p.node.name in receiving
        )
        state["victim"] = victim
        FaultInjector(dep.testbed).crash_at(victim.node, at=env.now)
        state["result"] = yield append

    process = env.process(scenario())
    dep.run(until=process)
    return state


def test_write_replaces_chunk_after_midpush_crash():
    dep = make_deployment(replication=1)
    state = run_write_with_crash(dep)
    result, victim = state["result"], state["victim"]

    assert result.ok
    assert victim.chunks == {}  # crashed before the chunk committed
    # The chunk landed somewhere else, with its replica list scrubbed.
    directory = {}
    for provider in dep.providers.values():
        directory.update(provider.chunks)
    assert len(directory) == 1
    descriptor = next(iter(directory.values()))
    assert victim.provider_id not in descriptor.replicas
    assert len(descriptor.replicas) == 1


def test_written_version_reads_back_intact():
    dep = make_deployment(replication=1)
    state = run_write_with_crash(dep)
    env = dep.env
    reader = dep.new_client("r1")

    def check(env):
        result = yield env.process(reader.read(state["blob"], 0.0, 64.0))
        return result

    process = env.process(check(env))
    dep.run(until=process)
    read_result = process.value
    assert read_result.ok
    assert read_result.size_mb == 64.0


def test_replicated_write_heals_to_full_degree():
    dep = make_deployment(replication=2)
    state = run_write_with_crash(dep)
    result, victim = state["result"], state["victim"]

    assert result.ok
    directory = {}
    for provider in dep.providers.values():
        directory.update(provider.chunks)
    descriptor = next(iter(directory.values()))
    # Both replicas live, neither on the crashed provider.
    assert len(descriptor.replicas) == 2
    assert victim.provider_id not in descriptor.replicas
    for pid in descriptor.replicas:
        assert dep.providers[pid].available
        assert descriptor.storage_key in dep.providers[pid].chunks


def test_write_retry_works_under_failure_detector():
    """Same crash, but with black-hole semantics + client rpc timeouts:
    the dead provider refuses new ingests, the push is re-placed, and
    the write still completes before the detector even confirms."""
    dep = make_deployment(replication=1, chunk_size_mb=64.0)
    dep.attach_failure_detector(period_s=1.0, timeout_s=3.0)
    state = run_write_with_crash(dep)
    assert state["result"].ok
    directory = {}
    for provider in dep.providers.values():
        directory.update(provider.chunks)
    descriptor = next(iter(directory.values()))
    assert state["victim"].provider_id not in descriptor.replicas
